//! The Fast Raft engine (§IV), reusable at both C-Raft levels.
//!
//! One engine instance runs one consensus level over one log. Plain Fast
//! Raft wraps a single engine with the trivial [`ProceedGate`]; C-Raft runs
//! a `Local`-scope engine inside each cluster and a `Global`-scope engine
//! among cluster leaders whose inserts are deferred through a
//! [`GateRecorder`] until a *global state entry* commits locally (§V-B).
//!
//! ## Protocol summary
//!
//! - **Fast track** (§IV-B): proposers broadcast `ProposeAt{index, entry}`
//!   to all members; each site inserts the entry *self-approved* (if the
//!   slot is free) and sends its `Vote` (its `log[index]` plus its commit
//!   index) to the leader. The leader's periodic decision loop processes
//!   index `commitIndex+1` once a classic quorum of votes arrived: it
//!   inserts the most-voted entry leader-approved, and commits immediately
//!   when a fast quorum (⌈3M/4⌉) voted for that same entry.
//! - **Classic track**: when the fast quorum is missed, the inserted entry
//!   replicates via `AppendEntries` (heartbeat-gated) and commits by the
//!   usual matchIndex rule — one extra message round.
//! - **Election** (§IV-C): up-to-dateness counts **leader-approved** entries
//!   only; voters attach all their self-approved entries to granted votes,
//!   and the new leader replays them into `possibleEntries` (the recovery
//!   algorithm), guaranteeing any possibly-chosen entry is re-chosen.
//! - **Membership** (§IV-D): sites announce joins/leaves themselves; the
//!   leader serializes changes one at a time, catches joiners up as
//!   non-voting learners, and detects **silent leaves** via a member
//!   timeout of missed AppendEntries responses.
//!
//! ## Liveness guard (hole filling)
//!
//! If the index right above `commitIndex` never gathers a classic quorum of
//! votes (e.g. the proposer vanished after a partial broadcast), the leader
//! re-proposes a no-op **through the normal proposer path** after
//! `hole_fill_ticks` stalled decision ticks. Sites already holding an entry
//! at the index keep it and re-vote for it, so the decision rule still picks
//! any possibly-chosen entry — safety is untouched while the log unblocks.
//! This guard is implied but not spelled out by the paper; see DESIGN.md.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use bytes::Bytes;
use des::{SimRng, SimTime};
use raft::{Role, Timing};
use wire::{
    fold_commit_digest, fold_session_digest, session_state_current, Actions, Approval, ClientOp,
    ClientOutcome, ClientRequest, Configuration, Consistency, EntryId, EntryList, LeaseState,
    LogEntry, LogIndex, LogScope,
    NodeId, Observation, Payload, PersistCmd, ReadIndexQueue, SessionApply, SessionId,
    SessionTable, Snapshot, Term, TimerKind, VoteHold, MAX_INSERT_WINDOW,
};

use crate::gate::{GatePurpose, GateToken, GateVerdict, InsertGate};
use crate::message::FastRaftMessage;
use crate::possible::PossibleEntries;

/// Proposal-sequence numbers are reserved in stable storage in blocks of
/// this size (one write-ahead command per block, not per proposal). A crash
/// discards at most one partial block of unused ids.
const SEQ_RESERVE_BLOCK: u64 = 64;

/// Cached `ENGINE_TRACE` env check: protocol-step tracing to stderr for
/// debugging runs (set the variable to any value to enable).
fn trace_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("ENGINE_TRACE").is_some())
}

/// Which set of timer kinds an engine arms — base names for single-level
/// protocols and C-Raft's local level, `Global*` for C-Raft's global level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerProfile {
    /// Election / Heartbeat / LeaderTick / ProposalRetry / JoinRetry.
    Base,
    /// GlobalElection / GlobalHeartbeat / ... (§V inter-cluster level).
    Global,
}

impl TimerProfile {
    /// Maps a base timer kind to this profile's concrete kind.
    pub fn map(self, base: TimerKind) -> TimerKind {
        match self {
            TimerProfile::Base => base,
            TimerProfile::Global => match base {
                TimerKind::Election => TimerKind::GlobalElection,
                TimerKind::Heartbeat => TimerKind::GlobalHeartbeat,
                TimerKind::LeaderTick => TimerKind::GlobalLeaderTick,
                TimerKind::ProposalRetry => TimerKind::GlobalProposalRetry,
                TimerKind::JoinRetry => TimerKind::GlobalJoinRetry,
                other => other,
            },
        }
    }

    /// Maps a concrete timer kind back to the base kind, if it belongs to
    /// this profile.
    pub fn unmap(self, kind: TimerKind) -> Option<TimerKind> {
        match self {
            TimerProfile::Base => match kind {
                TimerKind::Election
                | TimerKind::Heartbeat
                | TimerKind::LeaderTick
                | TimerKind::ProposalRetry
                | TimerKind::JoinRetry => Some(kind),
                _ => None,
            },
            TimerProfile::Global => match kind {
                TimerKind::GlobalElection => Some(TimerKind::Election),
                TimerKind::GlobalHeartbeat => Some(TimerKind::Heartbeat),
                TimerKind::GlobalLeaderTick => Some(TimerKind::LeaderTick),
                TimerKind::GlobalProposalRetry => Some(TimerKind::ProposalRetry),
                TimerKind::GlobalJoinRetry => Some(TimerKind::JoinRetry),
                _ => None,
            },
        }
    }
}

/// How proposals reach the log (§IV-B vs the contention note in §IV-F).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProposalMode {
    /// The paper's fast track: broadcast to every member, who insert
    /// self-approved and vote. Two message rounds without contention.
    #[default]
    Broadcast,
    /// Forward to the leader, which assigns the next index and replicates
    /// on the classic track. One extra round, but contention-free —
    /// C-Raft's global level uses this so concurrent per-cluster batches
    /// do not collide (see DESIGN.md "Known deviations").
    LeaderForward,
}

/// A queued membership change awaiting its turn (one at a time, §IV-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReconfigOp {
    Add(NodeId),
    Remove(NodeId),
}

/// A proposal issued at this site, tracked until committed.
#[derive(Clone, Debug)]
struct PendingProposal {
    payload: Payload,
    /// The log index last targeted for this proposal.
    index: LogIndex,
}

/// Continuation parked while an insert is gated (C-Raft global level).
#[derive(Clone, Debug)]
enum GateCont {
    /// Finish a proposer-broadcast insert, then vote.
    ProposerVote { index: LogIndex, entry: LogEntry },
    /// Finish a decision-loop insert, then run the fast-quorum check.
    Decision { index: LogIndex, entry: LogEntry },
    /// Finish an AppendEntries insert; ack when the whole batch landed.
    Append {
        index: LogIndex,
        entry: LogEntry,
        ack: u64,
    },
    /// Finish a leader-forwarded append (ProposalMode::LeaderForward).
    LeaderAppend { index: LogIndex, entry: LogEntry },
}

/// A linearizable read already admitted at a commit floor the state machine
/// has not caught up to yet (pipelined apply only): the floor is safe — it
/// was captured under lease or ReadIndex confirmation — but answering before
/// the apply queue reaches it would let the client observe state older than
/// its admission point.
#[derive(Clone, Debug)]
struct PendingReadAnswer {
    reply_to: NodeId,
    session: SessionId,
    seq: u64,
    floor: LogIndex,
}

/// Accumulated acknowledgement for one gated AppendEntries message.
#[derive(Clone, Debug)]
struct AckState {
    from: NodeId,
    /// Term the batch was verified under; the ack is dropped if it changed.
    term: Term,
    match_index: LogIndex,
    leader_commit: LogIndex,
    /// ReadIndex probe of the original message, echoed in the eventual ack.
    probe: u64,
    remaining: usize,
}

/// One consensus level of Fast Raft: a sans-IO state machine.
#[derive(Debug)]
pub struct FastRaftEngine {
    id: NodeId,
    scope: LogScope,
    timers: TimerProfile,
    timing: Timing,
    rng: SimRng,

    // ---- persistent ----
    current_term: Term,
    voted_for: Option<NodeId>,
    log: wire::SparseLog,
    /// Latest snapshot covering the compacted log prefix, served to sites
    /// whose `nextIndex` fell below `log.first_index()`.
    snapshot: Option<Snapshot>,

    // ---- volatile ----
    commit_index: LogIndex,
    /// Highest index applied to the state machine. Trails `commit_index`
    /// only under [`Timing::pipelined_apply`], between a commit advancement
    /// and the embedding's drain stage; equal to it at every step boundary
    /// otherwise.
    applied_index: LogIndex,
    /// Linearizable reads admitted at a floor above `applied_index`,
    /// answered when the apply queue catches up (pipelined apply only).
    reads_awaiting_apply: Vec<PendingReadAnswer>,
    /// Running digest of the committed sequence (the simulated state
    /// machine); captured into snapshots as the state image.
    state_digest: u64,
    role: Role,
    leader_hint: Option<NodeId>,
    config: Configuration,
    config_index: LogIndex,
    election_votes: BTreeSet<NodeId>,
    /// Self-approved entries shipped by granters during the election.
    recovery_votes: Vec<(NodeId, Vec<(LogIndex, LogEntry)>)>,
    /// Highest index verified to match the current leader (follower side).
    verified: LogIndex,

    // ---- leader volatile ----
    possible: PossibleEntries,
    next_index: BTreeMap<NodeId, LogIndex>,
    match_index: BTreeMap<NodeId, LogIndex>,
    fast_match: BTreeMap<NodeId, LogIndex>,
    last_leader_index: LogIndex,
    learners: BTreeSet<NodeId>,
    missed_beats: BTreeMap<NodeId, u32>,
    pending_config: Option<LogIndex>,
    /// The site awaiting a JoinReply once `pending_config` commits.
    pending_join_notify: Option<NodeId>,
    reconfig_queue: VecDeque<ReconfigOp>,
    stalled_ticks: u32,
    /// Highest index already repaired proactively (from an append ack), so
    /// one stall triggers at most one proactive no-op broadcast.
    last_proactive_repair: LogIndex,

    // ---- applied client state (deterministic across replicas) ----
    /// Per-session exactly-once dedup table; updated while applying
    /// committed `Write`/`Batch` entries and carried inside snapshots.
    sessions: SessionTable,

    // ---- gateway (client-facing) ----
    /// In-flight client requests submitted at this node.
    client_pending: BTreeMap<(SessionId, u64), ClientOp>,
    /// `(session, seq)` → proposal id for in-flight writes.
    client_writes: HashMap<(SessionId, u64), EntryId>,

    // ---- leader read path (ReadIndex; shared machinery in wire::read) ----
    reads: ReadIndexQueue,

    // ---- leader lease (quorum-free reads; shared machinery in wire::lease) ----
    /// This engine's local clock, stamped by the embedding before each
    /// event (see [`wire::ConsensusProtocol::set_local_clock`]). Stays
    /// [`SimTime::ZERO`] (clockless) in purely event-driven embeddings,
    /// which keeps every lease path inert. At the C-Raft global level the
    /// same machinery yields the recursive lease: the "followers" granting
    /// are the other clusters' leaders.
    local_now: SimTime,
    /// Leader-side grant collection (valid ⇒ linearizable reads served
    /// locally with zero messages).
    lease: LeaseState,
    /// Follower-side half of the promise: refuse rival candidates while a
    /// grant this engine emitted is still live on its own clock.
    vote_hold: VoteHold,

    // ---- proposer ----
    next_seq: u64,
    /// One past the highest sequence number covered by a persisted
    /// [`PersistCmd::ReserveProposalSeqs`]; `next_seq` never reaches it
    /// without first extending the reservation, so recovery can restart
    /// the counter at the persisted floor and never re-mint an id.
    reserved_seqs: u64,
    pending_proposals: BTreeMap<EntryId, PendingProposal>,

    // ---- joiner ----
    /// Contact sites while not yet a configuration member.
    join_contacts: Option<Vec<NodeId>>,
    /// Consecutive elections that drew no response at all — the signature
    /// of having been silently evicted while away (§IV-D: such a site
    /// "will need to send a join request to return to the configuration").
    silent_elections: u32,

    // ---- bookkeeping ----
    id_index: HashMap<EntryId, LogIndex>,
    proposal_mode: ProposalMode,
    /// Next index handed to a leader-forwarded proposal (grows past
    /// gate-pending assignments).
    assign_cursor: LogIndex,
    pending_gates: HashMap<GateToken, GateCont>,
    /// Indices with an outstanding decision-insert gate.
    gated_decisions: BTreeSet<LogIndex>,
    acks: HashMap<u64, AckState>,
    next_ack_id: u64,
}

impl FastRaftEngine {
    /// Creates a member node with a bootstrap configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bootstrap` is empty or omits `id`, or on invalid timing.
    pub fn new(
        id: NodeId,
        bootstrap: Configuration,
        scope: LogScope,
        timers: TimerProfile,
        timing: Timing,
        rng: SimRng,
    ) -> Self {
        timing.validate();
        assert!(!bootstrap.is_empty(), "bootstrap configuration is empty");
        assert!(bootstrap.contains(id), "node {id} not in bootstrap");
        Self::construct(id, bootstrap, None, scope, timers, timing, rng)
    }

    /// Creates a node that is **not yet a member**: it will send join
    /// requests to `contacts` until accepted (§IV-D).
    ///
    /// # Panics
    ///
    /// Panics if `contacts` is empty or on invalid timing.
    pub fn joining(
        id: NodeId,
        contacts: Vec<NodeId>,
        scope: LogScope,
        timers: TimerProfile,
        timing: Timing,
        rng: SimRng,
    ) -> Self {
        timing.validate();
        assert!(!contacts.is_empty(), "joining node needs contact sites");
        Self::construct(
            id,
            Configuration::empty(),
            Some(contacts),
            scope,
            timers,
            timing,
            rng,
        )
    }

    fn construct(
        id: NodeId,
        config: Configuration,
        join_contacts: Option<Vec<NodeId>>,
        scope: LogScope,
        timers: TimerProfile,
        timing: Timing,
        rng: SimRng,
    ) -> Self {
        FastRaftEngine {
            id,
            scope,
            timers,
            timing,
            rng,
            current_term: Term::ZERO,
            voted_for: None,
            log: wire::SparseLog::new(),
            snapshot: None,
            commit_index: LogIndex::ZERO,
            applied_index: LogIndex::ZERO,
            reads_awaiting_apply: Vec::new(),
            state_digest: 0,
            role: Role::Follower,
            leader_hint: None,
            config,
            config_index: LogIndex::ZERO,
            election_votes: BTreeSet::new(),
            recovery_votes: Vec::new(),
            verified: LogIndex::ZERO,
            possible: PossibleEntries::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            fast_match: BTreeMap::new(),
            last_leader_index: LogIndex::ZERO,
            learners: BTreeSet::new(),
            missed_beats: BTreeMap::new(),
            pending_config: None,
            pending_join_notify: None,
            reconfig_queue: VecDeque::new(),
            stalled_ticks: 0,
            last_proactive_repair: LogIndex::ZERO,
            sessions: SessionTable::new(),
            client_pending: BTreeMap::new(),
            client_writes: HashMap::new(),
            reads: ReadIndexQueue::new(),
            local_now: SimTime::ZERO,
            lease: LeaseState::new(),
            vote_hold: VoteHold::new(),
            next_seq: 0,
            reserved_seqs: 0,
            pending_proposals: BTreeMap::new(),
            join_contacts,
            silent_elections: 0,
            id_index: HashMap::new(),
            proposal_mode: ProposalMode::default(),
            assign_cursor: LogIndex::ZERO,
            pending_gates: HashMap::new(),
            gated_decisions: BTreeSet::new(),
            acks: HashMap::new(),
            next_ack_id: 0,
        }
    }

    /// Rebuilds an engine from persisted state after a crash: snapshot (if
    /// any) + retained log suffix. The commit index resumes at the
    /// compaction horizon — everything the snapshot covers is known
    /// committed and already applied. The configuration is taken from the
    /// log's latest config entry, falling back to the snapshot's, then
    /// `bootstrap`.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        id: NodeId,
        term: Term,
        voted_for: Option<NodeId>,
        mut log: wire::SparseLog,
        snapshot: Option<Snapshot>,
        bootstrap: Configuration,
        scope: LogScope,
        timers: TimerProfile,
        timing: Timing,
        rng: SimRng,
        proposal_seq_floor: u64,
    ) -> Self {
        let mut e = Self::construct(id, bootstrap, None, scope, timers, timing, rng);
        e.current_term = term;
        e.voted_for = voted_for;
        // Resume the proposal counter above every persisted reservation so
        // no pre-crash `EntryId` is ever minted again (peers would dedup a
        // reused id against the *old* entry and drop the new proposal).
        e.next_seq = proposal_seq_floor;
        e.reserved_seqs = proposal_seq_floor;
        if let Some(snap) = &snapshot {
            // Idempotent for a log already compacted to the snapshot; for a
            // log rebuilt some other way (C-Raft's global reconstruction) it
            // establishes the horizon and drops covered entries.
            log.install_snapshot(snap.last_index, snap.last_term);
            e.config = snap.config.clone();
            e.config_index = snap.last_index;
            e.sessions = snap.sessions.clone();
            if let Some(digest) = snap.state_digest() {
                e.state_digest = digest;
            }
        }
        e.log = log;
        e.snapshot = snapshot;
        e.commit_index = e.log.compacted_through();
        e.applied_index = e.commit_index;
        e.verified = e.commit_index;
        if let Some((idx, cfg)) = e.log.latest_config() {
            e.config = cfg.clone();
            e.config_index = idx;
        }
        e.last_leader_index = e
            .log
            .last_leader_index()
            .max(e.log.compacted_through());
        for (idx, entry) in e.log.iter() {
            e.id_index.insert(entry.id, idx);
        }
        if !e.config.contains(id) && !e.config.is_empty() {
            // Removed while down: must rejoin explicitly.
            e.join_contacts = Some(e.config.to_vec());
        }
        e
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Stamps this engine's view of "now" (an input like any message; see
    /// [`wire::ConsensusProtocol::set_local_clock`]). Never stamping it
    /// leaves the engine clockless and every lease path inert.
    pub fn set_local_clock(&mut self, now: SimTime) {
        self.local_now = now;
    }

    /// Current role at this level.
    pub fn role(&self) -> Role {
        self.role
    }

    /// `true` while this node leads its configuration.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Current term at this level.
    pub fn current_term(&self) -> Term {
        self.current_term
    }

    /// Highest committed index.
    pub fn commit_index(&self) -> LogIndex {
        self.commit_index
    }

    /// The highest index applied to the state machine. Equal to
    /// [`FastRaftEngine::commit_index`] except transiently under
    /// [`Timing::pipelined_apply`], between commit and the drain stage.
    pub fn applied_index(&self) -> LogIndex {
        self.applied_index
    }

    /// The log at this level.
    pub fn log(&self) -> &wire::SparseLog {
        &self.log
    }

    /// The latest snapshot covering the compacted prefix, if any.
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.snapshot.as_ref()
    }

    /// Running digest of the committed sequence (the simulated state
    /// machine's state).
    pub fn state_digest(&self) -> u64 {
        self.state_digest
    }

    /// The configuration currently obeyed.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// The believed leader.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// Highest leader-approved index (§IV-A `lastLeaderIndex`).
    pub fn last_leader_index(&self) -> LogIndex {
        self.last_leader_index
    }

    /// Proposals issued here and not yet known committed.
    pub fn pending_proposals(&self) -> usize {
        self.pending_proposals.len()
    }

    /// Inserts currently parked behind the [`InsertGate`]: continuations
    /// awaiting a `gate_ready` call. Zero for ungated (plain Fast Raft)
    /// engines. Liveness oracles assert this drains to zero at quiescence.
    pub fn pending_gate_count(&self) -> usize {
        self.pending_gates.len()
    }

    /// Indices holding an outstanding decision-insert reservation. Each
    /// reservation blocks `leader_log_settled()` (and with it reconfig,
    /// term no-ops, read nudges, and forwarded-proposal acceptance) until
    /// its gate resolves — so a reservation that outlives every pending
    /// gate is a permanent liveness wedge, and oracles assert
    /// `gated_decision_count() == 0` whenever `pending_gate_count() == 0`.
    pub fn gated_decision_count(&self) -> usize {
        self.gated_decisions.len()
    }

    /// The per-session exactly-once dedup table (applied state).
    pub fn sessions(&self) -> &SessionTable {
        &self.sessions
    }

    /// `true` while this node is still negotiating membership.
    pub fn is_joining(&self) -> bool {
        self.join_contacts.is_some()
    }

    /// The consensus scope this engine operates on.
    pub fn scope(&self) -> LogScope {
        self.scope
    }

    /// Selects how proposals reach the log (default:
    /// [`ProposalMode::Broadcast`], the paper's fast track).
    pub fn set_proposal_mode(&mut self, mode: ProposalMode) {
        self.proposal_mode = mode;
    }

    /// The current proposal mode.
    pub fn proposal_mode(&self) -> ProposalMode {
        self.proposal_mode
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Arms initial timers; joiners start their join handshake instead.
    pub fn bootstrap(&mut self, out: &mut Actions<FastRaftMessage>) {
        if self.join_contacts.is_some() {
            self.send_join_request(out);
        } else {
            self.reset_election_timer(out);
        }
    }

    /// Announces departure (§IV-D): ask the leader to reconfigure us out.
    pub fn request_leave(&mut self, out: &mut Actions<FastRaftMessage>) {
        let msg = FastRaftMessage::LeaveRequest { node: self.id };
        if let Some(leader) = self.leader_hint {
            out.send(leader, msg);
        } else {
            let peers: Vec<NodeId> = self.config.peers(self.id).collect();
            out.send_many(peers, msg);
        }
    }

    fn send_join_request(&mut self, out: &mut Actions<FastRaftMessage>) {
        let Some(contacts) = &self.join_contacts else {
            return;
        };
        let msg = FastRaftMessage::JoinRequest { node: self.id };
        // Ask the hinted leader, but keep probing every contact too: the
        // hint may name a crashed leader (exactly the churn that made us
        // rejoin), and a stale hint must not wedge the join forever — a
        // current member redirects us to the live leader.
        let mut targets: Vec<NodeId> = contacts.clone();
        if let Some(leader) = self.leader_hint {
            if !targets.contains(&leader) {
                targets.push(leader);
            }
        }
        out.send_many(targets, msg);
        out.set_timer(
            self.timers.map(TimerKind::JoinRetry),
            self.timing.join_timeout,
        );
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Handles a timer expressed in **base** kinds (the embedding unmaps
    /// profile-specific kinds first; [`TimerProfile::unmap`]).
    pub fn on_timer(
        &mut self,
        base: TimerKind,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        match base {
            TimerKind::Election
                if self.role != Role::Leader && self.join_contacts.is_none() => {
                    self.start_election(out);
                }
            TimerKind::Heartbeat
                if self.role == Role::Leader => {
                    self.note_missed_beats(out);
                    self.dispatch_append_entries(out);
                    out.set_timer(
                        self.timers.map(TimerKind::Heartbeat),
                        self.timing.heartbeat,
                    );
                }
            TimerKind::LeaderTick
                if self.role == Role::Leader => {
                    self.run_decision_loop(gate, out);
                    self.maybe_fill_hole(out);
                    self.start_next_reconfig(out);
                    out.set_timer(
                        self.timers.map(TimerKind::LeaderTick),
                        self.timing.decision_tick,
                    );
                }
            TimerKind::ProposalRetry => self.retry_proposals(out),
            TimerKind::JoinRetry
                if self.join_contacts.is_some() => {
                    self.send_join_request(out);
                }
            _ => {}
        }
    }

    fn reset_election_timer(&mut self, out: &mut Actions<FastRaftMessage>) {
        let timeout = self.timing.election_timeout(&mut self.rng);
        out.set_timer(self.timers.map(TimerKind::Election), timeout);
    }

    // ------------------------------------------------------------------
    // Proposing (§IV-B "To propose an entry")
    // ------------------------------------------------------------------

    /// Issues a proposal for `payload` from this site, broadcasting it to
    /// all configuration members. Returns the proposal id.
    pub fn propose_payload(
        &mut self,
        payload: Payload,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) -> EntryId {
        let id = self.fresh_id(out);
        match self.proposal_mode {
            ProposalMode::Broadcast => {
                let index = self.pick_proposal_index();
                self.pending_proposals.insert(
                    id,
                    PendingProposal {
                        payload: payload.clone(),
                        index,
                    },
                );
                self.broadcast_proposal(id, payload, index, gate, out);
            }
            ProposalMode::LeaderForward => {
                self.pending_proposals.insert(
                    id,
                    PendingProposal {
                        payload: payload.clone(),
                        index: LogIndex::ZERO,
                    },
                );
                self.forward_proposal(id, payload, gate, out);
            }
        }
        out.set_timer(
            self.timers.map(TimerKind::ProposalRetry),
            self.timing.proposal_timeout,
        );
        id
    }

    /// Sends a leader-forwarded proposal (index ZERO = "leader assigns").
    fn forward_proposal(
        &mut self,
        id: EntryId,
        payload: Payload,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let entry = LogEntry {
            term: self.current_term,
            id,
            payload,
            approval: Approval::SelfApproved,
        };
        if self.role == Role::Leader {
            self.leader_accept_forwarded(entry, gate, out);
        } else if let Some(leader) = self.leader_hint {
            out.send(
                leader,
                FastRaftMessage::ProposeAt {
                    index: LogIndex::ZERO,
                    entry,
                },
            );
        } else {
            let peers: Vec<NodeId> = self.config.peers(self.id).collect();
            out.send_many(
                peers,
                FastRaftMessage::ProposeAt {
                    index: LogIndex::ZERO,
                    entry,
                },
            );
        }
    }

    /// Leader side of a forwarded proposal: assign the next index and run
    /// the (possibly gated) classic-track insert.
    fn leader_accept_forwarded(
        &mut self,
        entry: LogEntry,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        // Session dedup at the door: a `(session, seq)` the applied state
        // already covers must not claim another slot — this is the check
        // that survives compaction and leader restarts (the table rides in
        // the snapshot, unlike the in-log id mappings below).
        if self.reject_session_duplicate(&entry, out) {
            return;
        }
        // Dedup: retries of ids already in the log are ignored (commit
        // notification flows from emit_commit_effects).
        if let Some(&idx) = self.id_index.get(&entry.id) {
            if idx <= self.commit_index {
                out.send(
                    entry.id.proposer,
                    FastRaftMessage::ProposeReply {
                        id: entry.id,
                        committed: true,
                        leader_hint: Some(self.id),
                    },
                );
            }
            return;
        }
        // Expired-session refusal — strictly *after* the in-flight dedup
        // above (a pair already replicating must never be told "placed
        // nowhere"), and only once this leader's applied table provably
        // covers every commit: a fresh leader's table merely lags until an
        // entry of its own term commits, so "expired" can be a false
        // positive for a live session whose writes are committed but not
        // yet applied here. Refusing terminally then would have the client
        // reopen a session and resubmit while the surviving placement
        // applies — a double apply. A not-yet-current leader instead falls
        // through and *places* the op: the placement is itself the
        // own-term entry that makes the leader current (answering Retry
        // here would livelock on a quiescent leader — nothing else ever
        // commits an own-term entry, see `register_read`'s nudge), and the
        // authoritative apply-time check below answers exactly once it
        // commits. Once current, the refusal is exact and terminal (any
        // same-pair placement still in the log under another proposal id
        // is skipped by the same apply-time check).
        if self.timing.session_ttl > 0 && self.applied_session_state_current() {
            if let Some((session, seq)) = entry.payload.session_key() {
                if self.sessions.is_expired_retry(session, seq) {
                    self.respond_client(
                        entry.id.proposer,
                        session,
                        seq,
                        ClientOutcome::SessionExpired,
                        out,
                    );
                    return;
                }
            }
        }
        if !self.leader_log_settled() && self.assign_cursor <= self.last_leader_index {
            // A fresh leader with an undecided backlog must not hand out
            // slots yet; the proposer retries after its timeout.
            return;
        }
        self.assign_cursor = self.assign_cursor.max(self.last_leader_index).next();
        let k = self.assign_cursor;
        if trace_enabled() {
            eprintln!("FORWARD_ACCEPT {} k={} id={}", self.id, k.as_u64(), entry.id);
        }
        let chosen = entry
            .with_term(self.current_term)
            .with_approval(Approval::LeaderApproved);
        match gate.begin(k, &chosen, GatePurpose::DecisionInsert) {
            GateVerdict::Proceed => {
                self.insert_leader_entry(k, chosen, out);
                self.advance_commit_classic(out);
            }
            GateVerdict::Defer(token) => {
                // Mark the id as assigned so duplicate retries don't claim
                // another slot while the gate replicates, and reserve the
                // slot: without the reservation `leader_log_settled()`
                // stays true while this insert is pending, letting the
                // read nudge or a reconfig claim the same `k` — two
                // same-term entries racing for one index, and whichever
                // releases second silently overwrites the (possibly
                // already replicated) first. The reservation drains in
                // `gate_ready`'s LeaderAppend arm.
                self.id_index.insert(chosen.id, k);
                self.gated_decisions.insert(k);
                self.pending_gates
                    .insert(token, GateCont::LeaderAppend { index: k, entry: chosen });
            }
        }
    }

    /// If `entry` carries a session-tagged payload whose `(session, seq)`
    /// this site's applied state already covers, notifies the proposer
    /// appropriately and returns `true` (the entry must not be (re)placed).
    fn reject_session_duplicate(
        &mut self,
        entry: &LogEntry,
        out: &mut Actions<FastRaftMessage>,
    ) -> bool {
        let Some((session, seq)) = entry.payload.session_key() else {
            return false;
        };
        if let Some(first_index) = self.sessions.duplicate_of(session, seq) {
            self.respond_client(
                entry.id.proposer,
                session,
                seq,
                ClientOutcome::Duplicate { first_index },
                out,
            );
            return true;
        }
        // Deliberately NO expired-session refusal here: this runs on the
        // any-replica broadcast insert path (`on_propose_at`), where one
        // *lagging* replica's table must not veto an op the rest of the
        // quorum is placing. Expiry is enforced where it is exact — the
        // single-door checks (`client_write`, `leader_accept_forwarded`),
        // gated on `applied_session_state_current`, and authoritatively at
        // apply time (`emit_commit_effects`).
        false
    }

    /// Registers an externally recovered proposal for retry tracking
    /// without re-broadcasting it now. Used by C-Raft when a new local
    /// leader inherits batches its predecessor proposed globally but whose
    /// commitment is unknown (§V-B): the proposal-retry timer re-broadcasts
    /// them under the original id, so duplicates are suppressed.
    pub fn track_pending_proposal(
        &mut self,
        id: EntryId,
        payload: Payload,
        index: LogIndex,
        out: &mut Actions<FastRaftMessage>,
    ) {
        self.pending_proposals
            .insert(id, PendingProposal { payload, index });
        out.set_timer(
            self.timers.map(TimerKind::ProposalRetry),
            self.timing.proposal_timeout,
        );
    }

    /// Convenience wrapper for data payloads.
    pub fn propose_data(
        &mut self,
        data: Bytes,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) -> EntryId {
        self.propose_payload(Payload::Data(data), gate, out)
    }

    // ------------------------------------------------------------------
    // The typed client surface (sessions, exactly-once writes, reads)
    // ------------------------------------------------------------------

    /// Submits a typed client request at this node (the gateway). Writes
    /// ride the normal proposal machinery as `Payload::Write` and are
    /// answered when the gateway applies their commit; reads are answered
    /// from the commit floor (stale) or after a leader ReadIndex round
    /// (linearizable). All answers surface as
    /// [`Observation::ClientResponse`].
    pub fn on_client_request(
        &mut self,
        req: ClientRequest,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let ClientRequest { session, seq, op } = req;
        match op {
            ClientOp::Write(data) => self.client_write(session, seq, data, gate, out),
            ClientOp::Register => self.client_register(session, gate, out),
            ClientOp::Read(consistency) => self.client_read(session, seq, consistency, gate, out),
        }
    }

    /// Explicit session registration: a committed [`Payload::Register`]
    /// consumes seq 1 of the session, so a later eviction can never leave a
    /// re-appliable *data* write at the session's boundary (see
    /// [`ClientOp::Register`]). Unlike classic Raft's leader-only door,
    /// the registration entry travels the normal proposal path
    /// ([`FastRaftMessage::ProposeAt`] forwards whole entries), so any
    /// gateway can register.
    fn client_register(
        &mut self,
        session: SessionId,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        // Server-assigned id on request: derived from this gateway's node
        // id and proposal counter, so concurrent registrations at different
        // gateways cannot collide. A *retry* of an unassigned registration
        // may open a second (unused) session; the TTL reclaims it.
        let session = if session.is_unassigned() {
            SessionId::assigned(self.id, self.next_seq)
        } else {
            session
        };
        if let Some(first_index) = self.sessions.duplicate_of(session, 1) {
            self.respond_client(
                self.id,
                session,
                1,
                ClientOutcome::Registered {
                    session,
                    index: first_index,
                },
                out,
            );
            return;
        }
        if let Some(id) = self.client_writes.get(&(session, 1)) {
            if self.pending_proposals.contains_key(id) {
                out.set_timer(
                    self.timers.map(TimerKind::ProposalRetry),
                    self.timing.proposal_timeout,
                );
                return;
            }
        }
        // No expired-retry door: re-registering an evicted session is
        // harmless by construction — the registration carries no value, so
        // re-applying it merely re-opens an empty dedup window.
        self.client_pending.insert((session, 1), ClientOp::Register);
        let id = self.propose_payload(Payload::Register { session }, gate, out);
        self.client_writes.insert((session, 1), id);
    }

    fn client_write(
        &mut self,
        session: SessionId,
        seq: u64,
        data: Bytes,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        // Applied already? Answer without proposing (retry-safe).
        if let Some(first_index) = self.sessions.duplicate_of(session, seq) {
            self.respond_client(
                self.id,
                session,
                seq,
                ClientOutcome::Duplicate { first_index },
                out,
            );
            return;
        }
        if let Some(id) = self.client_writes.get(&(session, seq)) {
            if self.pending_proposals.contains_key(id) {
                // Already in flight: the proposal-retry machinery keeps
                // pushing it; just make sure the timer is armed.
                out.set_timer(
                    self.timers.map(TimerKind::ProposalRetry),
                    self.timing.proposal_timeout,
                );
                return;
            }
        }
        // Stale write from an expired (evicted) session: terminal refusal
        // only when this gateway happens to be the leader with a provably
        // current applied table (see `applied_session_state_current`) — on
        // any other gateway the table may simply lag the commit sequence
        // and "expired" can be a false positive for a live session. Those
        // fall through: the op is placed and routed onward, and the leader
        // door or the authoritative apply-time check rules, relayed back
        // through the normal ClientReply path.
        if self.timing.session_ttl > 0
            && self.sessions.is_expired_retry(session, seq)
            && self.applied_session_state_current()
        {
            self.respond_client(self.id, session, seq, ClientOutcome::SessionExpired, out);
            return;
        }
        self.client_pending
            .insert((session, seq), ClientOp::Write(data.clone()));
        let id = self.propose_payload(Payload::Write { session, seq, data }, gate, out);
        self.client_writes.insert((session, seq), id);
    }

    fn client_read(
        &mut self,
        session: SessionId,
        seq: u64,
        consistency: Consistency,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        match consistency {
            // A single engine has one log: its local floor *is* the global
            // floor at its scope, so both stale consistencies answer from
            // `commit_index` immediately. (The C-Raft layer intercepts
            // StaleGlobal above this point and answers from its
            // global-commit floor instead.)
            Consistency::StaleLocal | Consistency::StaleGlobal => {
                // Served from this site's floor, no coordination.
                out.observe(Observation::ClientResponse {
                    session,
                    seq,
                    outcome: ClientOutcome::ReadOk {
                        scope: self.scope,
                        commit_floor: self.commit_index,
                    },
                });
            }
            Consistency::Linearizable => {
                if self.role == Role::Leader {
                    self.client_pending
                        .insert((session, seq), ClientOp::Read(consistency));
                    self.register_read(session, seq, self.id, gate, out);
                } else if let Some(leader) = self.leader_hint {
                    self.client_pending
                        .insert((session, seq), ClientOp::Read(consistency));
                    out.send(leader, FastRaftMessage::ClientRead { session, seq });
                } else {
                    // No leader known (election in progress): retry later.
                    out.observe(Observation::ClientResponse {
                        session,
                        seq,
                        outcome: ClientOutcome::Retry,
                    });
                }
            }
        }
    }

    /// `true` when this node's applied session table provably covers every
    /// write the cluster has ever committed: it is the leader and an entry
    /// of its own term has committed (the shared
    /// [`wire::session_state_current`] condition). Only then is a
    /// door-level `SessionTable::is_expired_retry` verdict exact;
    /// elsewhere the table may simply lag and "expired" can be a false
    /// positive for a perfectly live session.
    fn applied_session_state_current(&self) -> bool {
        self.role == Role::Leader
            // Pipelined apply: the table only covers the *applied* prefix;
            // while the queue is non-empty the door verdict stays inexact
            // (answers degrade to Retry, never a wrong terminal refusal).
            && self.applied_index == self.commit_index
            && session_state_current(&self.log, self.commit_index, self.current_term)
    }

    /// Answers a client request: as an observation when the gateway is this
    /// node, as a [`FastRaftMessage::ClientReply`] otherwise.
    fn respond_client(
        &mut self,
        to: NodeId,
        session: SessionId,
        seq: u64,
        outcome: ClientOutcome,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if to == self.id {
            if let Some(id) = self.client_writes.remove(&(session, seq)) {
                self.pending_proposals.remove(&id);
            }
            self.client_pending.remove(&(session, seq));
            out.observe(Observation::ClientResponse {
                session,
                seq,
                outcome,
            });
        } else {
            out.send(
                to,
                FastRaftMessage::ClientReply {
                    session,
                    seq,
                    outcome,
                },
            );
        }
    }

    /// Gateway handling of a typed outcome arriving from another node.
    fn on_client_reply(
        &mut self,
        session: SessionId,
        seq: u64,
        outcome: ClientOutcome,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if let ClientOutcome::Redirect { leader_hint } = &outcome {
            if let Some(hint) = leader_hint {
                self.leader_hint = Some(*hint);
            }
            // A redirected write stays pending: the proposal machinery keeps
            // retrying it (broadcast mode needs no hint at all). Redirected
            // reads surface so the caller retries against the updated hint.
            if self.client_writes.contains_key(&(session, seq)) {
                return;
            }
        }
        // The wire reply carries no op kind; the gateway knows it locally.
        // A remote door answering a registration's (session, 1) with a
        // commit/duplicate verdict is reporting the registration applied —
        // surface it as `Registered`.
        let outcome = match (&outcome, self.client_pending.get(&(session, seq))) {
            (ClientOutcome::Committed { index }, Some(ClientOp::Register)) => {
                ClientOutcome::Registered {
                    session,
                    index: *index,
                }
            }
            (ClientOutcome::Duplicate { first_index }, Some(ClientOp::Register)) => {
                ClientOutcome::Registered {
                    session,
                    index: *first_index,
                }
            }
            _ => outcome,
        };
        if self.client_pending.contains_key(&(session, seq)) {
            self.respond_client(self.id, session, seq, outcome, out);
        }
    }

    /// Leader side of a linearizable read: capture the commit floor, then
    /// confirm leadership with a heartbeat round before answering.
    fn register_read(
        &mut self,
        session: SessionId,
        seq: u64,
        reply_to: NodeId,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        debug_assert_eq!(self.role, Role::Leader);
        // A fresh leader's commit floor may lag entries committed by its
        // predecessor until an entry of its own term commits (Raft §8):
        // until then the floor must not be served. Exception: a provably
        // empty history serves the trivially correct floor 0 — otherwise an
        // empty system could never answer its first read. "Provably empty"
        // means neither this leader's log nor any granted vote's recovered
        // entries contain anything: a fast quorum that chose an entry
        // intersects every classic quorum in a voter that would have
        // shipped it, so emptiness here implies no write ever completed.
        let provably_empty = self.commit_index.is_zero()
            && self.last_leader_index.is_zero()
            && self.log.is_empty()
            && self.possible.max_index().is_zero();
        if !provably_empty && self.log.term_at(self.commit_index) != self.current_term {
            self.respond_client(reply_to, session, seq, ClientOutcome::Retry, out);
            // Liveness nudge: a *quiescent* new leader — everything
            // inherited already committed — never runs `maybe_term_noop`
            // (that path only fires while commits lag), so without client
            // writes no current-term entry would ever commit and reads
            // would retry forever. Create the no-op on demand, only when a
            // read actually needs it, so write-only runs keep their exact
            // index layout.
            if self.commit_index >= self.last_leader_index && self.leader_log_settled() {
                let k = self.last_leader_index.next();
                let noop = LogEntry::noop(self.current_term, self.fresh_id(out));
                match gate.begin(k, &noop, GatePurpose::DecisionInsert) {
                    GateVerdict::Proceed => {
                        self.insert_leader_entry(k, noop, out);
                        self.advance_commit_classic(out);
                        self.dispatch_append_entries(out);
                    }
                    GateVerdict::Defer(token) => {
                        // Park as a Decision continuation: its gate_ready
                        // arm releases the `gated_decisions` reservation,
                        // so a gated (C-Raft global) nudge cannot wedge
                        // `leader_log_settled()`.
                        self.gated_decisions.insert(k);
                        self.pending_gates
                            .insert(token, GateCont::Decision { index: k, entry: noop });
                    }
                }
            }
            return;
        }
        let floor = self.commit_index;
        // Lease fast path: a classic quorum of live grants proves no rival
        // can have been elected, so the current commit floor is
        // linearizable to serve locally — zero messages, zero round trips
        // (see `docs/CONSISTENCY.md`). At the C-Raft global level this is
        // the recursive lease: the granters are the other clusters'
        // leaders.
        if self
            .lease
            .valid_at(self.local_now, &self.config, self.id, self.timing.max_clock_skew)
        {
            out.observe(Observation::LeaseRead {
                session,
                seq,
                floor,
            });
            self.answer_read(reply_to, session, seq, floor, out);
            return;
        }
        if self.config.classic_quorum() <= 1 {
            // A single-voter configuration confirms itself.
            out.observe(Observation::ReadIndexRead {
                session,
                seq,
                floor,
            });
            self.answer_read(reply_to, session, seq, floor, out);
            return;
        }
        // Retry idempotence (see `wire::ReadIndexQueue::is_pending`): the
        // pending round answers the retry too; just re-probe for liveness
        // in case the original heartbeats were lost.
        if self.reads.is_pending(session, seq, reply_to) {
            self.dispatch_append_entries(out);
            return;
        }
        self.reads.register(session, seq, reply_to, floor);
        // Confirm now rather than waiting out the heartbeat period.
        self.dispatch_append_entries(out);
    }

    /// Counts a follower's heartbeat ack toward pending ReadIndex rounds.
    fn note_read_ack(&mut self, from: NodeId, probe: u64, out: &mut Actions<FastRaftMessage>) {
        for r in self.reads.note_ack(from, probe, &self.config, self.id) {
            out.observe(Observation::ReadIndexRead {
                session: r.session,
                seq: r.seq,
                floor: r.floor,
            });
            self.answer_read(r.reply_to, r.session, r.seq, r.floor, out);
        }
    }

    /// Fails every pending ReadIndex round with `Retry` (leadership lost or
    /// re-confirmed under a different term).
    fn fail_pending_reads(&mut self, out: &mut Actions<FastRaftMessage>) {
        for r in self.reads.drain() {
            self.respond_client(r.reply_to, r.session, r.seq, ClientOutcome::Retry, out);
        }
    }

    /// Answers any locally pending write the session table now covers (a
    /// snapshot install can jump the commit floor across its application).
    fn sweep_client_pending(&mut self, out: &mut Actions<FastRaftMessage>) {
        let done: Vec<(SessionId, u64, LogIndex, bool)> = self
            .client_writes
            .keys()
            .filter_map(|&(s, q)| {
                self.sessions.duplicate_of(s, q).map(|idx| {
                    let reg = matches!(self.client_pending.get(&(s, q)), Some(ClientOp::Register));
                    (s, q, idx, reg)
                })
            })
            .collect();
        for (session, seq, first_index, register) in done {
            let outcome = if register {
                ClientOutcome::Registered {
                    session,
                    index: first_index,
                }
            } else {
                ClientOutcome::Duplicate { first_index }
            };
            self.respond_client(
                self.id,
                session,
                seq,
                outcome,
                out,
            );
        }
    }

    fn pick_proposal_index(&self) -> LogIndex {
        // Past everything this site has seen proposed or stored.
        self.log.last_index().max(self.commit_index).next()
    }

    fn broadcast_proposal(
        &mut self,
        id: EntryId,
        payload: Payload,
        index: LogIndex,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let entry = LogEntry {
            term: self.current_term,
            id,
            payload,
            approval: Approval::SelfApproved,
        };
        let peers: Vec<NodeId> = self.config.peers(self.id).collect();
        out.send_many(
            peers,
            FastRaftMessage::ProposeAt {
                index,
                entry: entry.clone(),
            },
        );
        // The proposer is itself a site: run the follower insert+vote path
        // locally.
        self.on_propose_at(self.id, index, entry, gate, out);
    }

    /// Event-driven re-targeting: when the log commits past a pending
    /// proposal's target index with a *different* entry, the proposal lost
    /// that slot — re-broadcast it at a fresh index immediately rather than
    /// waiting for the proposal timeout. Keeps throughput stable under
    /// concurrent proposers (§IV-F's contention scenario).
    fn retarget_lost_proposals(&mut self, out: &mut Actions<FastRaftMessage>) {
        if self.pending_proposals.is_empty() {
            return;
        }
        let lost: Vec<(EntryId, Payload)> = self
            .pending_proposals
            .iter()
            .filter(|(id, p)| {
                !p.index.is_zero()
                    && p.index <= self.commit_index
                    && self.log.get(p.index).is_none_or(|e| e.id != **id)
            })
            .map(|(id, p)| (*id, p.payload.clone()))
            .collect();
        for (id, payload) in lost {
            let index = self.pick_proposal_index();
            if let Some(p) = self.pending_proposals.get_mut(&id) {
                p.index = index;
            }
            let entry = LogEntry {
                term: self.current_term,
                id,
                payload,
                approval: Approval::SelfApproved,
            };
            let peers: Vec<NodeId> = self.config.peers(self.id).collect();
            out.send_many(
                peers,
                FastRaftMessage::ProposeAt {
                    index,
                    entry: entry.clone(),
                },
            );
            if self.log.get(index).is_none() {
                let mut proceed = crate::gate::ProceedGate;
                self.on_propose_at(self.id, index, entry, &mut proceed, out);
            } else {
                self.send_vote_for_slot(index, out);
            }
        }
    }

    fn retry_proposals(&mut self, out: &mut Actions<FastRaftMessage>) {
        if self.pending_proposals.is_empty() {
            return;
        }
        if self.proposal_mode == ProposalMode::LeaderForward {
            let pendings: Vec<(EntryId, Payload)> = self
                .pending_proposals
                .iter()
                .map(|(id, p)| (*id, p.payload.clone()))
                .collect();
            for (id, payload) in pendings {
                let mut proceed = crate::gate::ProceedGate;
                self.forward_proposal(id, payload, &mut proceed, out);
            }
            out.set_timer(
                self.timers.map(TimerKind::ProposalRetry),
                self.timing.proposal_timeout,
            );
            return;
        }
        let pendings: Vec<(EntryId, Payload, LogIndex)> = self
            .pending_proposals
            .iter()
            .map(|(id, p)| (*id, p.payload.clone(), p.index))
            .collect();
        for (id, payload, old_index) in pendings {
            // If our entry still occupies its slot, re-gather votes for the
            // same index; if it was overwritten, re-target a fresh index.
            let keep = self.log.get(old_index).is_some_and(|e| e.id == id);
            let index = if keep { old_index } else { self.pick_proposal_index() };
            if let Some(p) = self.pending_proposals.get_mut(&id) {
                p.index = index;
            }
            let entry = LogEntry {
                term: self.current_term,
                id,
                payload,
                approval: Approval::SelfApproved,
            };
            let peers: Vec<NodeId> = self.config.peers(self.id).collect();
            out.send_many(
                peers,
                FastRaftMessage::ProposeAt {
                    index,
                    entry: entry.clone(),
                },
            );
            // Re-vote locally as well (ungated: slot content already gated
            // when first inserted; occupied slots vote without insert).
            if self.log.get(index).is_none() {
                // Rare: our slot was truncated. Reinsert through the normal
                // path; a no-op gate race here simply re-runs the gate.
                let mut proceed = crate::gate::ProceedGate;
                self.on_propose_at(self.id, index, entry, &mut proceed, out);
            } else {
                self.send_vote_for_slot(index, out);
            }
        }
        out.set_timer(
            self.timers.map(TimerKind::ProposalRetry),
            self.timing.proposal_timeout,
        );
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Handles one incoming message.
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: FastRaftMessage,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        // Configuration filter (§III-A): consensus messages from sites
        // outside the configuration are ignored. Exceptions: client-level
        // traffic, and everything while we are not ourselves a member yet
        // (joiners must accept catch-up AppendEntries).
        let exempt = msg.is_client_traffic() || !self.config.contains(self.id);
        if !exempt && !self.config.contains(from) && !self.learners.contains(&from) {
            out.observe(Observation::MessageIgnored {
                reason: "sender not in configuration",
            });
            return;
        }
        // Any message from a live member clears its missed-beat counter.
        self.missed_beats.remove(&from);

        match msg {
            FastRaftMessage::ProposeAt { index, entry } => {
                self.on_propose_at(from, index, entry, gate, out)
            }
            FastRaftMessage::Vote {
                index,
                entry,
                commit_index,
            } => self.on_vote(from, index, entry, commit_index, out),
            FastRaftMessage::ProposeReply {
                id,
                committed,
                leader_hint,
            } => {
                if let Some(hint) = leader_hint {
                    self.leader_hint = Some(hint);
                }
                if committed && self.pending_proposals.remove(&id).is_some() {
                    out.observe(Observation::ProposalCommitted {
                        id,
                        index: LogIndex::ZERO,
                        scope: self.scope,
                    });
                }
            }
            FastRaftMessage::AppendEntries {
                term,
                leader,
                prev_index,
                entries,
                leader_commit,
                global_commit: _,
                probe,
            } => self.on_append_entries(
                from,
                term,
                leader,
                prev_index,
                entries,
                leader_commit,
                probe,
                gate,
                out,
            ),
            FastRaftMessage::AppendEntriesReply {
                term,
                success,
                match_index,
                probe,
                lease_until,
            } => self.on_append_reply(from, term, success, match_index, probe, lease_until, out),
            FastRaftMessage::ClientRead { session, seq } => {
                if self.role == Role::Leader {
                    self.register_read(session, seq, from, gate, out);
                } else {
                    out.send(
                        from,
                        FastRaftMessage::ClientReply {
                            session,
                            seq,
                            outcome: ClientOutcome::Redirect {
                                leader_hint: self.leader_hint,
                            },
                        },
                    );
                }
            }
            FastRaftMessage::ClientReply {
                session,
                seq,
                outcome,
            } => self.on_client_reply(session, seq, outcome, out),
            FastRaftMessage::RequestVote {
                term,
                candidate,
                last_leader_index,
                last_leader_term,
            } => self.on_request_vote(from, term, candidate, last_leader_index, last_leader_term, out),
            FastRaftMessage::RequestVoteReply {
                term,
                granted,
                self_approved,
            } => self.on_vote_reply(from, term, granted, self_approved, gate, out),
            FastRaftMessage::JoinRequest { node } => self.on_join_request(from, node, out),
            FastRaftMessage::JoinReply {
                accepted,
                leader_hint,
            } => {
                if let Some(hint) = leader_hint {
                    self.leader_hint = Some(hint);
                }
                if accepted && self.config.contains(self.id) {
                    self.finish_joining(out);
                } else if !accepted && self.join_contacts.is_some() {
                    // Redirect noted; retry goes to the hinted leader.
                }
            }
            FastRaftMessage::LeaveRequest { node } => self.on_leave_request(node, out),
            FastRaftMessage::InstallSnapshot {
                term,
                leader,
                snapshot,
            } => self.on_install_snapshot(from, term, leader, snapshot, out),
            FastRaftMessage::InstallSnapshotReply { term, last_index } => {
                self.on_install_snapshot_reply(from, term, last_index, out)
            }
        }
    }

    /// Completes a previously deferred insert (C-Raft: the global state
    /// entry committed locally).
    pub fn gate_ready(
        &mut self,
        token: GateToken,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let Some(cont) = self.pending_gates.remove(&token) else {
            return;
        };
        match cont {
            GateCont::ProposerVote { index, entry } => {
                self.finish_proposer_insert(index, entry, out);
            }
            GateCont::Decision { index, entry } => {
                self.gated_decisions.remove(&index);
                let committed = self.finish_decision_insert(index, entry, out);
                if committed {
                    // Commit advanced: the loop may continue.
                    self.run_decision_loop(gate, out);
                }
            }
            GateCont::LeaderAppend { index, entry } => {
                // The reservation drains whether or not the insert applies:
                // leaving it would hold `leader_log_settled()` false forever,
                // wedging reconfig, term no-ops, read nudges and (under
                // LeaderForward) every forwarded proposal. A continuation
                // from a superseded term must not insert — the slot may
                // since hold (even have committed) a newer leader's entry.
                self.gated_decisions.remove(&index);
                if self.role == Role::Leader && entry.term == self.current_term {
                    self.insert_leader_entry(index, entry, out);
                    self.advance_commit_classic(out);
                }
            }
            GateCont::Append { index, entry, ack } => {
                // A continuation from a superseded term must not apply: the
                // slot may since hold (even have committed) a newer leader's
                // entry. The batch's AckState records the term it was
                // verified under; skip the insert when it is stale and let
                // finish_append_ack drop the ack for the same reason.
                let (stale, done) = {
                    let st = self.acks.get_mut(&ack).expect("ack state");
                    st.remaining -= 1;
                    (st.term != self.current_term, st.remaining == 0)
                };
                if !stale {
                    self.apply_append_insert(index, entry, out);
                }
                if done {
                    let st = self.acks.remove(&ack).expect("ack state");
                    self.finish_append_ack(st, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fast track: proposer broadcasts and votes
    // ------------------------------------------------------------------

    /// §IV-B "When follower receives a proposed entry e for index i".
    fn on_propose_at(
        &mut self,
        _from: NodeId,
        index: LogIndex,
        entry: LogEntry,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        // Index ZERO marks a leader-forwarded proposal: the leader assigns
        // the slot; non-leaders redirect.
        if index.is_zero() {
            if self.role == Role::Leader {
                self.leader_accept_forwarded(entry, gate, out);
            } else {
                out.send(
                    entry.id.proposer,
                    FastRaftMessage::ProposeReply {
                        id: entry.id,
                        committed: false,
                        leader_hint: self.leader_hint,
                    },
                );
            }
            return;
        }
        // Session dedup: a `(session, seq)` this site already applied is
        // answered instead of re-inserted — unlike the id mapping below,
        // the session table survives compaction and restarts.
        if self.reject_session_duplicate(&entry, out) {
            return;
        }
        // Duplicate already committed? Notify the proposer (§IV-B step 1).
        // A mapping at or below the compaction horizon refers to an entry
        // whose slot was compacted away; it is committed by definition.
        if let Some(&idx) = self.id_index.get(&entry.id) {
            let committed = idx <= self.log.compacted_through()
                || (idx <= self.commit_index
                    && self.log.get(idx).is_some_and(|e| e.id == entry.id));
            if committed {
                out.send(
                    entry.id.proposer,
                    FastRaftMessage::ProposeReply {
                        id: entry.id,
                        committed: true,
                        leader_hint: self.leader_hint,
                    },
                );
                return;
            }
        }
        if index <= self.log.compacted_through() {
            // The slot was decided and compacted away; nothing to insert or
            // vote for. A losing proposal re-targets from its retry path.
            return;
        }
        if index.as_u64()
            > self.log.last_index().as_u64().max(self.commit_index.as_u64()) + MAX_INSERT_WINDOW
        {
            out.observe(Observation::MessageIgnored {
                reason: "proposed index beyond the insert window",
            });
            return;
        }
        if self.log.get(index).is_none() {
            let e = entry.with_approval(Approval::SelfApproved);
            match gate.begin(index, &e, GatePurpose::ProposerInsert) {
                GateVerdict::Proceed => self.finish_proposer_insert(index, e, out),
                GateVerdict::Defer(token) => {
                    self.pending_gates
                        .insert(token, GateCont::ProposerVote { index, entry: e });
                }
            }
        } else {
            // Slot occupied: do not overwrite (§IV-B step 2); vote for the
            // occupant.
            self.send_vote_for_slot(index, out);
        }
    }

    fn finish_proposer_insert(
        &mut self,
        index: LogIndex,
        entry: LogEntry,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if index <= self.log.compacted_through() {
            // The slot was decided and compacted while the insert was gated.
            return;
        }
        if self.log.get(index).is_some() {
            // Raced with an AppendEntries insert while gated; vote for the
            // now-present occupant instead.
            self.send_vote_for_slot(index, out);
            return;
        }
        self.id_index.insert(entry.id, index);
        out.persist(PersistCmd::Insert {
            scope: self.scope,
            index,
            entry: entry.clone(),
        });
        self.log.insert(index, entry);
        self.send_vote_for_slot(index, out);
    }

    /// §IV-B step 4: "Send log\[i\] and commitIndex to leaderId".
    fn send_vote_for_slot(&mut self, index: LogIndex, out: &mut Actions<FastRaftMessage>) {
        let Some(entry) = self.log.get(index).cloned() else {
            return;
        };
        if self.role == Role::Leader {
            // The leader is treated as a follower here (§IV-B): its own
            // vote goes straight into possibleEntries.
            self.record_vote(self.id, index, entry, self.commit_index, out);
        } else if let Some(leader) = self.leader_hint {
            out.send(
                leader,
                FastRaftMessage::Vote {
                    index,
                    entry,
                    commit_index: self.commit_index,
                },
            );
        }
        // No known leader: the vote is re-sent when the proposer retries or
        // when a leader emerges and re-solicits via recovery.
    }

    /// §IV-B "When leader receives an entry e for index k from site i".
    fn on_vote(
        &mut self,
        from: NodeId,
        index: LogIndex,
        entry: LogEntry,
        voter_commit: LogIndex,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if self.role != Role::Leader {
            return;
        }
        self.record_vote(from, index, entry, voter_commit, out);
    }

    fn record_vote(
        &mut self,
        from: NodeId,
        index: LogIndex,
        entry: LogEntry,
        voter_commit: LogIndex,
        out: &mut Actions<FastRaftMessage>,
    ) {
        // §IV-B step 2: nextIndex[i] tracks the voter's commit index so the
        // classic track keeps it consistent with the leader.
        if self.config.contains(from) || self.learners.contains(&from) {
            self.next_index.insert(from, voter_commit.next());
        }
        if index <= self.commit_index {
            // Slot already decided. If this vote names the committed entry,
            // tell its proposer; otherwise the proposal lost this slot and
            // its proposer will retry elsewhere.
            if self.log.get(index).is_some_and(|e| e.id == entry.id) {
                out.send(
                    entry.id.proposer,
                    FastRaftMessage::ProposeReply {
                        id: entry.id,
                        committed: true,
                        leader_hint: Some(self.id),
                    },
                );
            }
            return;
        }
        // A vote for an entry that is already committed at a *different*
        // index is a null vote (duplicate suppression).
        if let Some(&idx) = self.id_index.get(&entry.id) {
            if idx <= self.commit_index && idx != index {
                self.possible.record_null_vote(index, from);
                return;
            }
        }
        self.possible.record_vote(index, entry, from);
    }

    // ------------------------------------------------------------------
    // The decision loop (§IV-B "Periodically run by the leader")
    // ------------------------------------------------------------------

    /// `true` when no undecided index sits at or below the leader-approved
    /// top of the log: every recovered vote and broadcast proposal known to
    /// this leader has been decided, and no insert is gate-pending. Only
    /// then may the leader create an entry at `lastLeaderIndex + 1` itself
    /// (configuration changes, term no-ops, forwarded proposals) without
    /// risking stomping a chosen-but-not-yet-re-decided slot (§IV-C).
    fn leader_log_settled(&self) -> bool {
        self.possible.max_index() <= self.last_leader_index
            && self.log.last_index() <= self.last_leader_index
            && self.gated_decisions.is_empty()
    }

    /// The smallest index above the commit point not yet decided by a
    /// leader: the position the decision loop works on. Skips inherited
    /// leader-approved entries (fixed decisions the classic track commits).
    fn decision_point(&self) -> LogIndex {
        // One slice pass over the contiguous run above the commit point —
        // the run iterator stops at the first hole by construction, so only
        // the approval needs checking per slot.
        let mut k = self.commit_index.next();
        for (i, e) in self.log.contiguous_from(k) {
            if e.approval != Approval::LeaderApproved {
                break;
            }
            k = i.next();
        }
        k
    }

    /// The top of the *dense* leader-approved prefix: the highest index K
    /// with every slot in `(commitIndex, K]` holding a leader-approved
    /// entry (the committed prefix counts regardless of local approval
    /// stamps — fast-track copies below the commit point may still carry
    /// their self-approved stamp).
    ///
    /// Election up-to-dateness (§IV-C) compares THIS, not
    /// `lastLeaderIndex`. The two differ when leader-approved inserts
    /// complete out of order — under C-Raft, a global append whose
    /// intra-cluster replication finishes after a later slot's (global
    /// traffic reorders, local leadership churns) leaves a hole *below*
    /// `lastLeaderIndex`. Classic-track commits only ever count acks for a
    /// follower's contiguously-verified prefix, so a committed entry can
    /// sit exactly in such a hole; a vote granted on the inflated
    /// `lastLeaderIndex` would let a candidate missing that entry win and
    /// have its decision loop re-fill the slot — two different entries
    /// committed at one index.
    fn leader_coverage(&self) -> LogIndex {
        let mut k = self.commit_index;
        for (i, e) in self.log.contiguous_from(k.next()) {
            if e.approval != Approval::LeaderApproved {
                break;
            }
            k = i;
        }
        k
    }

    fn run_decision_loop(
        &mut self,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if self.role != Role::Leader {
            return;
        }
        // Fast-track check at the head of the log: the fast track may only
        // commit commitIndex + 1 (§IV-B), and only for a current-term entry.
        loop {
            let k = self.commit_index.next();
            let Some(existing) = self.log.get(k).cloned() else {
                break;
            };
            if existing.approval != Approval::LeaderApproved
                || existing.term != self.current_term
            {
                break;
            }
            self.update_fast_match(k, existing.id);
            if self.fast_quorum_at(k) {
                self.commit_through(k, true, out);
            } else {
                break;
            }
        }
        // Decide-ahead: choose entries from votes at the first undecided
        // index, keeping the leader-approved prefix contiguous. Inherited
        // old-term entries below are skipped — they commit via the classic
        // track once a current-term entry above them replicates (the same
        // reason classic Raft commits a new-term no-op on election).
        loop {
            let k = self.decision_point();
            if self.gated_decisions.contains(&k) {
                break; // An insert for k is still replicating locally.
            }
            if self.possible.voters_at(k) < self.config.classic_quorum() {
                break;
            }
            let chosen = match self.possible.most_voted(k) {
                Some((e, _)) => e.clone(),
                None => {
                    // Every vote was nulled: any entry may be inserted
                    // (§IV-B); use a no-op.
                    LogEntry::noop(self.current_term, self.fresh_id(out))
                }
            };
            if trace_enabled() {
                eprintln!(
                    "DECIDE {}@{:?} k={} chose {} voters={} votes_for_chosen={}",
                    self.id, self.scope, k.as_u64(), chosen.id,
                    self.possible.voters_at(k),
                    self.possible.votes_for(k, chosen.id)
                );
            }
            let chosen = chosen
                .with_term(self.current_term)
                .with_approval(Approval::LeaderApproved);
            match gate.begin(k, &chosen, GatePurpose::DecisionInsert) {
                GateVerdict::Proceed => {
                    let _ = self.finish_decision_insert(k, chosen, out);
                }
                GateVerdict::Defer(token) => {
                    self.gated_decisions.insert(k);
                    self.pending_gates
                        .insert(token, GateCont::Decision { index: k, entry: chosen });
                    break;
                }
            }
        }
        self.maybe_term_noop(gate, out);
    }

    /// Classic Raft commits a no-op at the start of every term so inherited
    /// entries become committable; Fast Raft needs the same, but the no-op
    /// may only go *above* every index that might hold a chosen entry —
    /// i.e. above every recovered vote and every entry in our log. When the
    /// system is quiet (no votes pending beyond the log), that point is
    /// exactly `lastLeaderIndex + 1`.
    fn maybe_term_noop(&mut self, gate: &mut dyn InsertGate, out: &mut Actions<FastRaftMessage>) {
        if self.role != Role::Leader
            || self.commit_index >= self.last_leader_index
            || self.log.term_at(self.last_leader_index) == self.current_term
            || !self.gated_decisions.is_empty()
        {
            return;
        }
        if !self.leader_log_settled() {
            // Undecided proposals beyond the inherited region: the decision
            // loop (plus hole filling) will produce the current-term entry.
            return;
        }
        let k = self.last_leader_index.next();
        if trace_enabled() {
            eprintln!("TERMNOOP {} k={}", self.id, k.as_u64());
        }
        let noop = LogEntry::noop(self.current_term, self.fresh_id(out));
        match gate.begin(k, &noop, GatePurpose::DecisionInsert) {
            GateVerdict::Proceed => {
                self.insert_leader_entry(k, noop, out);
                self.advance_commit_classic(out);
            }
            GateVerdict::Defer(token) => {
                self.gated_decisions.insert(k);
                self.pending_gates
                    .insert(token, GateCont::LeaderAppend { index: k, entry: noop });
            }
        }
    }

    /// Inserts the chosen entry at `k`; returns `true` if it fast-committed.
    fn finish_decision_insert(
        &mut self,
        k: LogIndex,
        chosen: LogEntry,
        out: &mut Actions<FastRaftMessage>,
    ) -> bool {
        if k != self.decision_point() || self.role != Role::Leader {
            // Stale continuation (the slot was decided another way or
            // leadership was lost while the gate replicated). Drop it; the
            // current machinery re-decides.
            return false;
        }
        self.insert_leader_entry(k, chosen.clone(), out);
        self.possible.null_out_elsewhere(chosen.id, k);
        self.update_fast_match(k, chosen.id);
        // The fast track only ever commits the index right above the commit
        // point (§IV-B "the fast track can only be taken here if the last
        // index was committed").
        if k == self.commit_index.next()
            && chosen.term == self.current_term
            && self.fast_quorum_at(k)
        {
            self.commit_through(k, true, out);
            return true;
        }
        false
    }

    fn insert_leader_entry(
        &mut self,
        index: LogIndex,
        entry: LogEntry,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if trace_enabled() {
            eprintln!("INSERT_LEADER {} k={} id={}", self.id, index.as_u64(), entry.id);
        }
        debug_assert_eq!(entry.approval, Approval::LeaderApproved);
        // A decision overwriting a self-approved occupant must drop the
        // loser's id mapping: once the slot is compacted, the mapping alone
        // would answer the loser's retries as committed.
        if let Some(old) = self.log.get(index) {
            if old.id != entry.id {
                self.id_index.remove(&old.id);
            }
        }
        self.id_index.insert(entry.id, index);
        if let Some(cfg) = entry.as_config() {
            if index >= self.config_index {
                self.adopt_config(cfg.clone(), index, out);
            }
        }
        out.persist(PersistCmd::Insert {
            scope: self.scope,
            index,
            entry: entry.clone(),
        });
        self.log.insert(index, entry);
        if index > self.last_leader_index {
            self.last_leader_index = index;
        }
        self.match_index.insert(self.id, self.last_leader_index);
    }

    /// Mints a proposal id, extending the persisted sequence reservation
    /// when the current block is exhausted. The reservation rides the same
    /// write-ahead channel as log inserts — it is durable before any
    /// message carrying the id leaves this site.
    fn fresh_id(&mut self, out: &mut Actions<FastRaftMessage>) -> EntryId {
        if self.next_seq >= self.reserved_seqs {
            self.reserved_seqs = self.next_seq + SEQ_RESERVE_BLOCK;
            out.persist(PersistCmd::ReserveProposalSeqs {
                scope: self.scope,
                through: self.reserved_seqs,
            });
        }
        let id = EntryId::new(self.id, self.next_seq);
        self.next_seq += 1;
        id
    }

    /// Highest proposal-sequence ceiling this engine has persisted; used by
    /// embeddings that cache engine state across deactivation (C-Raft's
    /// global side) to carry the floor forward.
    pub fn reserved_seqs(&self) -> u64 {
        self.reserved_seqs
    }

    fn update_fast_match(&mut self, k: LogIndex, chosen: EntryId) {
        for voter in self.possible.voters_for(k, chosen) {
            let fm = self.fast_match.entry(voter).or_insert(LogIndex::ZERO);
            if k > *fm {
                *fm = k;
            }
        }
        // The leader holds the entry itself.
        let fm = self.fast_match.entry(self.id).or_insert(LogIndex::ZERO);
        if k > *fm {
            *fm = k;
        }
    }

    fn fast_quorum_at(&self, k: LogIndex) -> bool {
        let count = self
            .config
            .iter()
            .filter(|m| self.fast_match.get(m).copied().unwrap_or(LogIndex::ZERO) >= k)
            .count();
        count >= self.config.fast_quorum()
    }

    /// Liveness guard: re-propose a no-op at the blocked index after
    /// `hole_fill_ticks` stalled decision ticks (see module docs).
    fn maybe_fill_hole(&mut self, out: &mut Actions<FastRaftMessage>) {
        let k = self.decision_point();
        let work_above = self.log.last_index() >= k || self.possible.max_index() >= k;
        let blocked = work_above
            && self.log.get(k).is_none_or(|e| e.approval == Approval::SelfApproved)
            && self.possible.voters_at(k) < self.config.classic_quorum()
            && !self.gated_decisions.contains(&k);
        if !blocked {
            self.stalled_ticks = 0;
            return;
        }
        self.stalled_ticks += 1;
        if self.stalled_ticks < self.timing.hole_fill_ticks {
            return;
        }
        self.stalled_ticks = 0;
        if trace_enabled() {
            eprintln!("HOLEFILL {} k={} voters={}", self.id, k.as_u64(), self.possible.voters_at(k));
        }
        self.fire_hole_repair(k, out);
    }

    /// Proactive hole repair: a successful append ack whose match stopped
    /// exactly below the blocked decision point, while replicated suffix
    /// exists above it, proves the classic track is stalled on that hole —
    /// repair it immediately instead of waiting out `hole_fill_ticks`.
    /// Fires at most once per index; the tick-based guard remains the
    /// backstop if the repair proposal itself is lost.
    fn maybe_proactive_repair(
        &mut self,
        acked: LogIndex,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let k = self.decision_point();
        if acked.next() != k
            || self.last_leader_index <= k
            || k <= self.last_proactive_repair
            || self.gated_decisions.contains(&k)
            || self.log.get(k).is_some_and(|e| e.approval == Approval::LeaderApproved)
            || self.possible.voters_at(k) >= self.config.classic_quorum()
        {
            return;
        }
        self.last_proactive_repair = k;
        if trace_enabled() {
            eprintln!("PROACTIVE_HOLEFILL {} k={}", self.id, k.as_u64());
        }
        self.fire_hole_repair(k, out);
    }

    /// Broadcasts a no-op proposal targeted at the blocked index. Sites
    /// holding an entry there keep it and re-vote for it, so any chosen
    /// entry still wins the decision rule — safety is untouched while the
    /// log unblocks.
    fn fire_hole_repair(&mut self, k: LogIndex, out: &mut Actions<FastRaftMessage>) {
        out.observe(Observation::HoleRepairTriggered { index: k });
        let entry = LogEntry {
            term: self.current_term,
            id: self.fresh_id(out),
            payload: Payload::Noop,
            approval: Approval::SelfApproved,
        };
        let peers: Vec<NodeId> = self.config.peers(self.id).collect();
        out.send_many(
            peers,
            FastRaftMessage::ProposeAt {
                index: k,
                entry: entry.clone(),
            },
        );
        let mut proceed = crate::gate::ProceedGate;
        self.on_propose_at(self.id, k, entry, &mut proceed, out);
    }

    // ------------------------------------------------------------------
    // Classic track: AppendEntries
    // ------------------------------------------------------------------

    fn note_missed_beats(&mut self, out: &mut Actions<FastRaftMessage>) {
        let peers: Vec<NodeId> = self.config.peers(self.id).collect();
        let mut suspects = Vec::new();
        for peer in peers {
            let missed = self.missed_beats.entry(peer).or_insert(0);
            *missed += 1;
            if *missed >= self.timing.member_timeout_beats {
                *missed = 0;
                suspects.push(peer);
            }
        }
        for peer in suspects {
            out.observe(Observation::MemberSuspected { node: peer });
            self.enqueue_reconfig(ReconfigOp::Remove(peer), out);
        }
    }

    fn dispatch_append_entries(&mut self, out: &mut Actions<FastRaftMessage>) {
        let budget = self.timing.append_budget();
        // Group followers by nextIndex: one budgeted batch is assembled per
        // distinct resume point, and the Arc-shared EntryList handle is
        // cloned per recipient — the fan-out shares a single allocation.
        let mut groups: BTreeMap<LogIndex, Vec<NodeId>> = BTreeMap::new();
        for peer in self
            .config
            .peers(self.id)
            .chain(self.learners.iter().copied().filter(|l| *l != self.id))
        {
            let next = *self
                .next_index
                .get(&peer)
                .unwrap_or(&self.commit_index.next());
            groups.entry(next).or_default().push(peer);
        }
        for (next, peers) in groups {
            // A site whose resume point fell below the first retained index
            // cannot be served from the log anymore (it was absent past the
            // compaction horizon, or is a fresh joiner): transfer the
            // compacted prefix as a snapshot; its ack moves nextIndex above
            // the horizon and replication resumes normally.
            if next < self.log.first_index() {
                if let Some(snapshot) = self.current_snapshot() {
                    for peer in peers {
                        out.send(
                            peer,
                            FastRaftMessage::InstallSnapshot {
                                term: self.current_term,
                                leader: self.id,
                                snapshot: snapshot.clone(),
                            },
                        );
                    }
                }
                continue;
            }
            // §IV-B: include entries from nextIndex through lastLeaderIndex.
            let entries = if self.last_leader_index >= next {
                let list =
                    self.log
                        .collect_range_budgeted(next, self.last_leader_index, budget);
                debug_assert!(list
                    .iter()
                    .all(|(_, e)| e.approval == Approval::LeaderApproved));
                list
            } else {
                EntryList::empty()
            };
            for peer in peers {
                out.send(
                    peer,
                    FastRaftMessage::AppendEntries {
                        term: self.current_term,
                        leader: self.id,
                        prev_index: next.prev_saturating(),
                        entries: entries.clone(),
                        leader_commit: self.commit_index,
                        global_commit: LogIndex::ZERO,
                        probe: self.reads.probe(),
                    },
                );
            }
        }
    }

    /// §IV-B "When a follower receives AppendEntries message".
    #[allow(clippy::too_many_arguments)]
    fn on_append_entries(
        &mut self,
        from: NodeId,
        term: Term,
        leader: NodeId,
        prev_index: LogIndex,
        entries: EntryList,
        leader_commit: LogIndex,
        probe: u64,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if term < self.current_term {
            out.send(
                from,
                FastRaftMessage::AppendEntriesReply {
                    term: self.current_term,
                    success: false,
                    match_index: LogIndex::ZERO,
                    probe: 0,
                    lease_until: SimTime::ZERO,
                },
            );
            return;
        }
        let leader_changed = self.leader_hint != Some(leader) || term > self.current_term;
        self.silent_elections = 0;
        if term > self.current_term || self.role != Role::Follower {
            self.become_follower(term, Some(leader), out);
        } else {
            self.leader_hint = Some(leader);
            self.reset_election_timer(out);
        }
        if leader_changed {
            // Entries verified against a previous leader may diverge above
            // the commit point; re-verify against the new leader.
            self.verified = self.commit_index;
        }
        // NOTE: prev_index is deliberately NOT trusted to raise `verified`.
        // Mere presence of entries through prev_index proves nothing — a
        // stale self-approved entry below prev could differ from the
        // leader's log (the log-matching induction classic Raft gets from
        // its prev-term check). Instead, a follower that cannot extend its
        // verified prefix acks its true `verified`, and the leader rewinds
        // nextIndex from the ack (see on_append_reply), resending the range
        // and overwriting stale entries.
        let _ = prev_index;

        // Contiguity bookkeeping: entries arrive as an explicit ascending
        // index range, but the range may contain interior holes — the leader
        // collects the *occupied* slots of a sparse log, so a hole in the
        // leader's log shows up as a skipped index here. matchIndex may only
        // advance across indices this site verifies contiguously from its
        // existing verified prefix; anything beyond the first skip is
        // inserted (it is leader-approved data) but not counted as matched,
        // so commits can never cross a hole. The hole itself is repaired by
        // the leader's decision loop / hole filling, after which the resend
        // from the acked matchIndex extends the prefix normally.
        let anchor = self.verified.max(self.commit_index);
        let mut new_match = anchor;
        for (idx, _) in entries.iter() {
            if *idx <= new_match {
                continue;
            }
            if *idx == new_match.next() {
                new_match = *idx;
            } else {
                break;
            }
        }

        // Apply inserts (§IV-B steps 4-5: overwrite conflicts, mark
        // leader-approved), possibly gated. The list is Arc-shared with
        // every other recipient of this batch; entries that land are cloned
        // out of it so the per-site approval stamp never touches the shared
        // allocation.
        let insert_bound =
            self.log.last_index().as_u64().max(self.commit_index.as_u64()) + MAX_INSERT_WINDOW;
        let mut to_insert = Vec::new();
        for (idx, entry) in entries.iter() {
            let idx = *idx;
            // Entries at or below the commit index are already decided (and
            // possibly compacted away); writing there is never needed and
            // would violate the compaction horizon.
            if idx <= self.commit_index {
                continue;
            }
            // Defensive: an index absurdly far above this log would force
            // the dense layout to materialize the whole span as slots.
            // Beyond the contiguity anchor it cannot advance matchIndex
            // anyway, so dropping it costs nothing.
            if idx.as_u64() > insert_bound {
                continue;
            }
            let needs_write = match self.log.get(idx) {
                None => true,
                Some(existing) => {
                    existing.id != entry.id
                        || existing.approval != Approval::LeaderApproved
                        || existing.term != entry.term
                }
            };
            if needs_write {
                to_insert.push((idx, entry.with_approval(Approval::LeaderApproved)));
            }
        }
        if to_insert.is_empty() {
            self.verified = new_match;
            self.complete_append(from, new_match, leader_commit, probe, out);
            return;
        }
        let ack_id = self.next_ack_id;
        self.next_ack_id += 1;
        let mut remaining = 0usize;
        let mut deferred = BTreeSet::new();
        let mut immediate = Vec::new();
        for (idx, entry) in to_insert {
            match gate.begin(idx, &entry, GatePurpose::AppendInsert) {
                GateVerdict::Proceed => immediate.push((idx, entry)),
                GateVerdict::Defer(token) => {
                    remaining += 1;
                    deferred.insert(idx);
                    self.pending_gates.insert(
                        token,
                        GateCont::Append {
                            index: idx,
                            entry,
                            ack: ack_id,
                        },
                    );
                }
            }
        }
        for (idx, entry) in immediate {
            self.apply_append_insert(idx, entry, out);
        }
        // `verified` may only cover entries that actually landed: a deferred
        // insert is not in the log (nor persisted) yet, so it must not be
        // acked — not by this append's (deferred) ack, and not by a later
        // empty heartbeat acking `verified` while the gate is still open.
        // Otherwise the leader could count a non-durable replica toward a
        // classic quorum and a crash of this site could lose a committed
        // entry. The full `new_match` is acked by `finish_append_ack` once
        // the last gate of the batch resolves.
        let mut landed = anchor;
        while landed < new_match && !deferred.contains(&landed.next()) {
            landed = landed.next();
        }
        self.verified = landed;
        if remaining == 0 {
            self.complete_append(from, new_match, leader_commit, probe, out);
        } else {
            self.acks.insert(
                ack_id,
                AckState {
                    from,
                    term: self.current_term,
                    match_index: new_match,
                    leader_commit,
                    probe,
                    remaining,
                },
            );
        }
    }

    fn apply_append_insert(
        &mut self,
        index: LogIndex,
        entry: LogEntry,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if index <= self.log.compacted_through() {
            // The slot was committed and compacted (e.g. a snapshot arrived
            // while this insert was gated); the write is obsolete.
            return;
        }
        if let Some(old) = self.log.get(index) {
            if old.id != entry.id {
                self.id_index.remove(&old.id);
            }
        }
        self.id_index.insert(entry.id, index);
        if let Some(cfg) = entry.as_config() {
            if index >= self.config_index {
                self.adopt_config(cfg.clone(), index, out);
            }
        }
        out.persist(PersistCmd::Insert {
            scope: self.scope,
            index,
            entry: entry.clone(),
        });
        self.log.insert(index, entry);
        // These entries are leader-approved: they advance lastLeaderIndex,
        // which drives election up-to-dateness (§IV-C).
        if index > self.last_leader_index {
            self.last_leader_index = index;
        }
    }

    fn complete_append(
        &mut self,
        from: NodeId,
        match_index: LogIndex,
        leader_commit: LogIndex,
        probe: u64,
        out: &mut Actions<FastRaftMessage>,
    ) {
        // §IV-B step 6: commitIndex follows the leader, clamped to what we
        // verified (deviation from the paper's `lastLogIndex` clamp — see
        // module docs; this keeps the committed prefix contiguous and
        // leader-verified).
        if leader_commit > self.commit_index {
            let target = leader_commit.min(match_index);
            if target > self.commit_index {
                self.commit_through_follower(target, out);
            }
        }
        out.send(
            from,
            FastRaftMessage::AppendEntriesReply {
                term: self.current_term,
                success: true,
                match_index,
                probe,
                // Grant stamped at reply time, not receive time: a gated
                // (deferred) ack that resolves later simply carries a
                // fresher promise.
                lease_until: self.emit_lease_grant(from),
            },
        );
    }

    /// Follower-side lease grant riding an append ack: a promise not to
    /// vote for anyone but `leader` before `now + lease_duration` on this
    /// engine's clock, enforced locally via [`VoteHold`]. Returns
    /// [`SimTime::ZERO`] (no grant) when clockless or leases are disabled.
    fn emit_lease_grant(&mut self, leader: NodeId) -> SimTime {
        if self.local_now == SimTime::ZERO || self.timing.lease_duration.is_zero() {
            return SimTime::ZERO;
        }
        let until = self.local_now + self.timing.lease_duration;
        self.vote_hold.note_grant(leader, until);
        until
    }

    fn finish_append_ack(&mut self, st: AckState, out: &mut Actions<FastRaftMessage>) {
        // Every insert of the batch has landed (and persisted write-ahead).
        // If the term changed while the gates were open, the verification is
        // stale — entries at those slots may since belong to a newer leader;
        // drop the ack and let the current leader re-establish the prefix.
        if st.term != self.current_term {
            return;
        }
        // The log is insert-only, so the contiguous run this batch verified
        // is still present: `verified` may now cover it.
        if st.match_index > self.verified {
            self.verified = st.match_index;
        }
        self.complete_append(st.from, st.match_index, st.leader_commit, st.probe, out);
    }

    /// Leader handling of AppendEntries acknowledgements.
    #[allow(clippy::too_many_arguments)]
    fn on_append_reply(
        &mut self,
        from: NodeId,
        term: Term,
        success: bool,
        match_index: LogIndex,
        probe: u64,
        lease_until: SimTime,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if term > self.current_term {
            self.become_follower(term, None, out);
            return;
        }
        if self.role != Role::Leader || term < self.current_term {
            return;
        }
        // Collect the follower's lease grant. A rejected grant means the
        // granter's clock runs ahead beyond the modeled bound: the lease
        // quietly degrades to the ReadIndex fallback rather than counting
        // an unsound promise.
        if !self.lease.record_grant(
            from,
            lease_until,
            self.local_now,
            self.timing.lease_duration,
            self.timing.max_clock_skew,
        ) {
            out.observe(Observation::MessageIgnored {
                reason: "lease grant beyond clock-skew bound",
            });
        }
        if success {
            // match_index is monotone (acked entries are persisted at the
            // follower), but nextIndex follows the ack exactly: a follower
            // that restarted from stable storage reports a low verified
            // match, and the leader must rewind and resend that range.
            let m = self.match_index.entry(from).or_insert(LogIndex::ZERO);
            if match_index > *m {
                *m = match_index;
            }
            self.next_index.insert(from, match_index.next());
            self.maybe_finish_join(from, out);
            self.advance_commit_classic(out);
            self.maybe_proactive_repair(match_index, out);
            // A current-term ack confirms leadership for ReadIndex rounds
            // registered at or before the echoed probe.
            self.note_read_ack(from, probe, out);
        } else {
            // Stale-term rejection carries no hint; rewind to the commit
            // point so the next dispatch re-sends the suffix.
            self.next_index.insert(from, self.commit_index.next());
        }
    }

    /// Classic-track commit rule: highest `k` with a classic quorum of
    /// matchIndex ≥ k and `log[k].term == currentTerm`.
    fn advance_commit_classic(&mut self, out: &mut Actions<FastRaftMessage>) {
        let quorum = self.config.classic_quorum();
        // The committed prefix must stay contiguous and leader-approved, but
        // `lastLeaderIndex` can sit *above* a hole (a non-extending append
        // still inserts its leader-approved entries). Cap the scan at the
        // end of the contiguous leader-approved run above commitIndex; the
        // decision loop / hole filling repairs the hole, after which the run
        // extends and the suffix becomes committable.
        let mut reach = self.commit_index;
        for (i, e) in self.log.contiguous_from(self.commit_index.next()) {
            if i > self.last_leader_index || e.approval != Approval::LeaderApproved {
                break;
            }
            reach = i;
        }
        let mut k = reach;
        while k > self.commit_index {
            if self.log.term_at(k) == self.current_term {
                let acks = self
                    .config
                    .iter()
                    .filter(|m| {
                        self.match_index.get(m).copied().unwrap_or(LogIndex::ZERO) >= k
                    })
                    .count();
                if acks >= quorum {
                    break;
                }
            }
            k = k.prev();
        }
        if k > self.commit_index {
            self.commit_through(k, false, out);
        }
    }

    // ------------------------------------------------------------------
    // Commit bookkeeping
    // ------------------------------------------------------------------

    /// Leader-side commit: advance through `new_commit`, emitting effects.
    ///
    /// Inline (the default) this applies each index on the spot, exactly as
    /// before; under [`Timing::pipelined_apply`] only the track observations
    /// and the commit-side protocol bookkeeping happen here — apply effects
    /// wait for the embedding's drain stage
    /// ([`FastRaftEngine::drain_applies`]), so the leader keeps assembling
    /// the next AppendEntries while the committed range applies.
    fn commit_through(
        &mut self,
        new_commit: LogIndex,
        fast: bool,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let old = self.commit_index;
        if new_commit <= old {
            return;
        }
        self.commit_index = new_commit;
        let inline = !self.timing.pipelined_apply;
        let mut k = old.next();
        while k <= new_commit {
            if fast {
                out.observe(Observation::FastTrackCommit { index: k });
            } else {
                out.observe(Observation::ClassicTrackCommit { index: k });
            }
            if inline {
                self.emit_commit_effects(k, out);
                self.applied_index = k;
            }
            k = k.next();
        }
        self.possible.release_through(new_commit);
        self.retarget_lost_proposals(out);
        if inline {
            self.maybe_compact(out);
        }
    }

    /// Follower-side commit: no track observation (the leader decided).
    fn commit_through_follower(
        &mut self,
        new_commit: LogIndex,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let old = self.commit_index;
        if new_commit <= old {
            return;
        }
        self.commit_index = new_commit;
        let inline = !self.timing.pipelined_apply;
        if inline {
            let mut k = old.next();
            while k <= new_commit {
                self.emit_commit_effects(k, out);
                self.applied_index = k;
                k = k.next();
            }
        }
        self.possible.release_through(new_commit);
        self.retarget_lost_proposals(out);
        if inline {
            self.maybe_compact(out);
        }
    }

    /// Drains the pipelined-apply queue: applies every committed-but-
    /// unapplied index in commit order, with effects identical to the
    /// inline path — digest folds, session-table transitions, proposer and
    /// gateway notifications, commit records, compaction, and the release
    /// of reads whose floor the state machine just reached.
    pub fn drain_applies(&mut self, out: &mut Actions<FastRaftMessage>) {
        while self.applied_index < self.commit_index {
            let k = self.applied_index.next();
            self.emit_commit_effects(k, out);
            self.applied_index = k;
        }
        self.maybe_compact(out);
        self.release_applied_reads(out);
    }

    /// Number of committed-but-unapplied indices queued for pipelined
    /// apply; always zero at step boundaries in inline mode.
    pub fn pending_applies(&self) -> u64 {
        self.commit_index.as_u64() - self.applied_index.as_u64()
    }

    /// Answers queued linearizable reads whose admission floor the applied
    /// state now covers (pipelined apply only; a no-op inline, where reads
    /// are never queued).
    fn release_applied_reads(&mut self, out: &mut Actions<FastRaftMessage>) {
        if self.reads_awaiting_apply.is_empty() {
            return;
        }
        let applied = self.applied_index;
        let ready: Vec<PendingReadAnswer> = {
            let (ready, waiting) = std::mem::take(&mut self.reads_awaiting_apply)
                .into_iter()
                .partition(|r| r.floor <= applied);
            self.reads_awaiting_apply = waiting;
            ready
        };
        for r in ready {
            self.respond_client(
                r.reply_to,
                r.session,
                r.seq,
                ClientOutcome::ReadOk {
                    scope: self.scope,
                    commit_floor: r.floor,
                },
                out,
            );
        }
    }

    /// Emits a linearizable read's answer — immediately when the applied
    /// state already covers the admission floor (always true inline),
    /// queued behind the apply pipeline otherwise, so the client can never
    /// observe state older than the floor its read was admitted at.
    fn answer_read(
        &mut self,
        reply_to: NodeId,
        session: SessionId,
        seq: u64,
        floor: LogIndex,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if floor <= self.applied_index {
            self.respond_client(
                reply_to,
                session,
                seq,
                ClientOutcome::ReadOk {
                    scope: self.scope,
                    commit_floor: floor,
                },
                out,
            );
        } else {
            self.reads_awaiting_apply.push(PendingReadAnswer {
                reply_to,
                session,
                seq,
                floor,
            });
        }
    }

    fn emit_commit_effects(&mut self, k: LogIndex, out: &mut Actions<FastRaftMessage>) {
        let Some(entry) = self.log.get(k).cloned() else {
            debug_assert!(false, "committing a hole at {k}");
            return;
        };
        self.state_digest = fold_commit_digest(self.state_digest, k, entry.id);
        // Exactly-once apply for session-tagged payloads (client writes and
        // global batches): the dedup table is part of applied state, so
        // every replica makes the same first-application decision — a
        // retried seq that commits at a second index is a no-op everywhere.
        let is_register = matches!(entry.payload, Payload::Register { .. });
        let session_outcome = entry.payload.session_key().map(|(session, seq)| {
            // Apply-time expiry check — authoritative: the table covers
            // every commit below `k`, so an untracked session at seq > 1
            // *was* evicted. Without this, a duplicate placement of the
            // same seq still sitting in the log when the eviction ran
            // would re-apply here (its dedup history is gone). Identical
            // on every replica (same table at the same `k`), no digest
            // fold — replicas stay convergent. A registration is exempt:
            // it carries no value, so re-applying one past an eviction
            // merely re-opens an empty session — exactly the property that
            // lets registered sessions close the seq-1 boundary window.
            if !is_register
                && self.timing.session_ttl > 0
                && self.sessions.is_expired_retry(session, seq)
            {
                return (session, seq, ClientOutcome::SessionExpired);
            }
            match self.sessions.apply(session, seq, k) {
                SessionApply::Applied => {
                    self.state_digest = fold_session_digest(self.state_digest, session, seq);
                    out.observe(Observation::SessionApplied {
                        scope: self.scope,
                        session,
                        seq,
                        index: k,
                    });
                    let outcome = if is_register {
                        ClientOutcome::Registered { session, index: k }
                    } else {
                        ClientOutcome::Committed { index: k }
                    };
                    (session, seq, outcome)
                }
                SessionApply::Duplicate { first_index } => {
                    out.observe(Observation::SessionDuplicate {
                        scope: self.scope,
                        session,
                        seq,
                        first_index,
                    });
                    let outcome = if is_register {
                        ClientOutcome::Registered {
                            session,
                            index: first_index,
                        }
                    } else {
                        ClientOutcome::Duplicate { first_index }
                    };
                    (session, seq, outcome)
                }
            }
        });
        match &entry.payload {
            Payload::Config(cfg) => {
                out.observe(Observation::ConfigCommitted {
                    members: cfg.len(),
                });
                if self.pending_config == Some(k) {
                    self.pending_config = None;
                    if let Some(joiner) = self.pending_join_notify.take() {
                        self.learners.remove(&joiner);
                        out.send(
                            joiner,
                            FastRaftMessage::JoinReply {
                                accepted: true,
                                leader_hint: Some(self.id),
                            },
                        );
                        out.observe(Observation::JoinAccepted { node: joiner });
                    }
                    self.start_next_reconfig(out);
                }
                // A committed config naming us while we were joining
                // finalizes membership.
                if cfg.contains(self.id) && self.join_contacts.is_some() {
                    self.finish_joining(out);
                }
            }
            Payload::Write { .. } | Payload::Register { .. } => {
                let (session, seq, outcome) =
                    session_outcome.clone().expect("write has a session key");
                if entry.id.proposer == self.id {
                    self.pending_proposals.remove(&entry.id);
                }
                if self.client_pending.contains_key(&(session, seq)) {
                    // The gateway observes its own commit: answer here.
                    self.respond_client(self.id, session, seq, outcome, out);
                } else if self.role == Role::Leader && entry.id.proposer != self.id {
                    // Covers gateways lagging behind the commit (they
                    // ignore non-pending replies).
                    out.send(
                        entry.id.proposer,
                        FastRaftMessage::ClientReply {
                            session,
                            seq,
                            outcome,
                        },
                    );
                }
            }
            Payload::Batch(b) => {
                // Item-wise exactly-once apply: a value whose item landed in
                // two batches (successor re-batching, a batch retry racing
                // compaction + restart) takes effect only once; each item's
                // session rides the table, which travels in snapshots.
                let items: Vec<(SessionId, u64)> =
                    b.items.iter().filter_map(|item| item.key).collect();
                for (session, seq) in items {
                    // Deliberately NO apply-time expiry skip here, unlike
                    // the Write arm: "untracked session at seq > 1" does
                    // not imply "duplicate of an evicted session" for
                    // batch items. They pass no session-vetting door, and
                    // the global commit index aggregates every cluster's
                    // traffic, so a steadily-writing session at one quiet
                    // colo can see more than `session_ttl` of *global* log
                    // distance between its own consecutive items — its
                    // next, genuinely fresh item would be silently dropped
                    // (already acked locally, absent globally). Applying
                    // re-creates the slot instead; the narrow cost is that
                    // a duplicate item placement outliving a global
                    // eviction re-applies, which only loses dedup, never
                    // data.
                    match self.sessions.apply(session, seq, k) {
                        SessionApply::Applied => {
                            self.state_digest =
                                fold_session_digest(self.state_digest, session, seq);
                            out.observe(Observation::SessionApplied {
                                scope: self.scope,
                                session,
                                seq,
                                index: k,
                            });
                        }
                        SessionApply::Duplicate { first_index } => {
                            out.observe(Observation::SessionDuplicate {
                                scope: self.scope,
                                session,
                                seq,
                                first_index,
                            });
                        }
                    }
                }
                let proposer = entry.id.proposer;
                if proposer == self.id {
                    if self.pending_proposals.remove(&entry.id).is_some() {
                        out.observe(Observation::ProposalCommitted {
                            id: entry.id,
                            index: k,
                            scope: self.scope,
                        });
                    }
                } else if self.role == Role::Leader {
                    out.send(
                        proposer,
                        FastRaftMessage::ProposeReply {
                            id: entry.id,
                            committed: true,
                            leader_hint: Some(self.id),
                        },
                    );
                }
            }
            Payload::Data(_) => {
                let proposer = entry.id.proposer;
                if proposer == self.id {
                    if self.pending_proposals.remove(&entry.id).is_some() {
                        out.observe(Observation::ProposalCommitted {
                            id: entry.id,
                            index: k,
                            scope: self.scope,
                        });
                    }
                } else if self.role == Role::Leader {
                    out.send(
                        proposer,
                        FastRaftMessage::ProposeReply {
                            id: entry.id,
                            committed: true,
                            leader_hint: Some(self.id),
                        },
                    );
                }
            }
            Payload::Noop | Payload::GlobalState(_) => {
                // Internal entries; GlobalState commits are consumed by the
                // C-Raft layer through the Actions::commits channel.
                if entry.id.proposer == self.id {
                    self.pending_proposals.remove(&entry.id);
                }
            }
        }
        // Deterministic session expiry: idleness is measured in committed
        // log distance, and the sweep runs once per committed index — every
        // replica applies the identical eviction sequence regardless of how
        // its commits were batched, so the digest fold keeps snapshots
        // convergent.
        for session in self.sessions.evict_idle(k, self.timing.session_ttl) {
            self.state_digest = wire::fold_session_evicted(self.state_digest, session);
            out.observe(Observation::SessionEvicted {
                scope: self.scope,
                session,
                at: k,
            });
        }
        out.commit(self.scope, k, entry);
    }

    // ------------------------------------------------------------------
    // Snapshots + log compaction
    // ------------------------------------------------------------------

    /// Compacts the committed prefix into a snapshot once its retained
    /// length exceeds [`Timing::snapshot_threshold`]. Every role compacts —
    /// the committed prefix is immutable everywhere — so per-site log
    /// residency stays bounded, not just the leader's. Compaction never
    /// crosses a hole (the committed prefix is contiguous by construction,
    /// and [`wire::SparseLog::compact_to`] clamps regardless).
    fn maybe_compact(&mut self, out: &mut Actions<FastRaftMessage>) {
        let threshold = self.timing.snapshot_threshold;
        if threshold == 0 {
            return;
        }
        let horizon = self.log.compacted_through();
        // Compaction is bounded by the *applied* prefix, not the committed
        // one: the snapshot captures digest + session table, which are
        // apply-time state. Inline, applied == committed here; pipelined,
        // compaction simply runs at the drain stage.
        let retained_decided = self.applied_index.as_u64().saturating_sub(horizon.as_u64());
        if retained_decided <= threshold {
            return;
        }
        let through = self.applied_index;
        let snapshot = Snapshot {
            scope: self.scope,
            last_index: through,
            last_term: self.log.term_at(through),
            config: self.config_for_snapshot(through),
            state: Snapshot::digest_state(self.state_digest),
            sessions: self.sessions.clone(),
        };
        out.persist(PersistCmd::InstallSnapshot {
            snapshot: snapshot.clone(),
        });
        let new_horizon = self.log.compact_to(through);
        debug_assert_eq!(new_horizon, through, "committed prefix must be contiguous");
        self.snapshot = Some(snapshot);
        out.observe(Observation::LogCompacted {
            scope: self.scope,
            through,
            retained: self.log.len(),
        });
    }

    /// The configuration in force at `through`: the current configuration
    /// when its entry sits at or below the cut, otherwise the newest config
    /// entry inside the retained prefix (falling back to the previous
    /// snapshot's, then the current configuration).
    fn config_for_snapshot(&self, through: LogIndex) -> Configuration {
        if self.config_index <= through {
            return self.config.clone();
        }
        let mut cfg = self.snapshot.as_ref().map(|s| s.config.clone());
        for (_, e) in self.log.range(self.log.first_index(), through) {
            if let Some(c) = e.as_config() {
                cfg = Some(c.clone());
            }
        }
        cfg.unwrap_or_else(|| self.config.clone())
    }

    /// The snapshot to serve laggards: the cached one (compaction refreshes
    /// it), synthesized from the log's horizon if a recovery path lost it.
    /// Public so the C-Raft layer can cache the global engine's snapshot
    /// across deactivation.
    pub fn current_snapshot(&self) -> Option<Snapshot> {
        let horizon = self.log.compacted_through();
        if horizon.is_zero() {
            return None;
        }
        match &self.snapshot {
            Some(s) if s.last_index == horizon => Some(s.clone()),
            _ => Some(Snapshot {
                scope: self.scope,
                last_index: horizon,
                last_term: self.log.compacted_term(),
                config: self.config_for_snapshot(horizon),
                state: Snapshot::digest_state(self.state_digest),
                sessions: self.sessions.clone(),
            }),
        }
    }

    /// Laggard side of a snapshot transfer (§IV-D catch-up): replace the
    /// compacted prefix wholesale and resume replication above it.
    ///
    /// Snapshot installs are **not** gated at C-Raft's global level: every
    /// entry the snapshot covers is globally committed, so there is nothing
    /// a successor local leader could lose — it re-fetches the prefix from
    /// the global leader instead of from local global-state entries.
    fn on_install_snapshot(
        &mut self,
        from: NodeId,
        term: Term,
        leader: NodeId,
        snapshot: Snapshot,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if term < self.current_term {
            out.send(
                from,
                FastRaftMessage::InstallSnapshotReply {
                    term: self.current_term,
                    last_index: LogIndex::ZERO,
                },
            );
            return;
        }
        self.silent_elections = 0;
        let leader_changed = self.leader_hint != Some(leader) || term > self.current_term;
        if term > self.current_term || self.role != Role::Follower {
            self.become_follower(term, Some(leader), out);
        } else {
            self.leader_hint = Some(leader);
            self.reset_election_timer(out);
        }
        if leader_changed {
            self.verified = self.commit_index;
        }
        let last_index = snapshot.last_index;
        if last_index <= self.commit_index {
            // Stale transfer: everything it covers is already committed
            // here. Ack our actual coverage so the leader resumes higher.
            out.send(
                from,
                FastRaftMessage::InstallSnapshotReply {
                    term: self.current_term,
                    last_index: self.commit_index,
                },
            );
            return;
        }
        if trace_enabled() {
            eprintln!(
                "INSTALL_SNAPSHOT {}@{:?} through={}",
                self.id,
                self.scope,
                last_index.as_u64()
            );
        }
        let old_commit = self.commit_index;
        out.persist(PersistCmd::InstallSnapshot {
            snapshot: snapshot.clone(),
        });
        self.log.install_snapshot(last_index, snapshot.last_term);
        // Drop id mappings for entries the install discarded. Only mappings
        // at or below the *pre-install* commit index are known committed
        // (and may keep answering duplicate proposals as such) — an
        // uncommitted self-approved entry below the new horizon may have
        // lost its slot to a different entry, and must not be reported
        // committed.
        let log = &self.log;
        self.id_index
            .retain(|_, idx| *idx <= old_commit || log.get(*idx).is_some());
        // Adopt the snapshot's configuration unless a *surviving* config
        // entry above the horizon supersedes it; a config entry the install
        // discarded (conflicting suffix) must no longer be obeyed.
        if self.config_index <= last_index || self.log.get(self.config_index).is_none() {
            self.adopt_config(snapshot.config.clone(), last_index, out);
        }
        if let Some(digest) = snapshot.state_digest() {
            self.state_digest = digest;
        }
        // Adopt the applied session state: the snapshot's table covers
        // strictly more commits than ours (last_index > old commit). The
        // apply pipeline fast-forwards with it — the snapshot state already
        // subsumes any queued-but-undrained range, whose entries the
        // install just discarded.
        self.sessions = snapshot.sessions.clone();
        self.commit_index = last_index;
        self.applied_index = last_index;
        self.verified = self.verified.max(last_index);
        if last_index > self.last_leader_index {
            self.last_leader_index = last_index;
        }
        self.possible.release_through(last_index);
        self.snapshot = Some(snapshot);
        out.observe(Observation::SnapshotInstalled {
            scope: self.scope,
            last_index,
        });
        // Gateway sweep: writes submitted here whose application the
        // install fast-forwarded past must still be answered.
        self.sweep_client_pending(out);
        self.release_applied_reads(out);
        self.retarget_lost_proposals(out);
        out.send(
            from,
            FastRaftMessage::InstallSnapshotReply {
                term: self.current_term,
                last_index,
            },
        );
    }

    fn on_install_snapshot_reply(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: LogIndex,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if term > self.current_term {
            self.become_follower(term, None, out);
            return;
        }
        if self.role != Role::Leader || term < self.current_term {
            return;
        }
        let m = self.match_index.entry(from).or_insert(LogIndex::ZERO);
        if last_index > *m {
            *m = last_index;
        }
        self.next_index.insert(from, last_index.next());
        self.maybe_finish_join(from, out);
        self.advance_commit_classic(out);
    }

    // ------------------------------------------------------------------
    // Elections (§IV-C)
    // ------------------------------------------------------------------

    fn become_follower(
        &mut self,
        term: Term,
        leader: Option<NodeId>,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let was_leader = self.role == Role::Leader;
        // Leadership (or the term it was confirmed under) is gone: any read
        // still awaiting its ReadIndex confirmation must not be answered,
        // and collected lease grants are void (they backed *this*
        // leadership).
        self.fail_pending_reads(out);
        self.lease.clear();
        if term > self.current_term {
            self.current_term = term;
            self.voted_for = None;
            self.persist_term_vote(out);
            self.verified = self.commit_index;
        }
        self.role = Role::Follower;
        if leader.is_some() {
            self.leader_hint = leader;
        }
        self.election_votes.clear();
        self.recovery_votes.clear();
        if was_leader {
            out.cancel_timer(self.timers.map(TimerKind::Heartbeat));
            out.cancel_timer(self.timers.map(TimerKind::LeaderTick));
        }
        if self.join_contacts.is_none() {
            self.reset_election_timer(out);
        }
        out.observe(Observation::BecameFollower {
            term: self.current_term,
        });
    }

    fn persist_term_vote(&self, out: &mut Actions<FastRaftMessage>) {
        out.persist(PersistCmd::SetTermVote {
            scope: self.scope,
            term: self.current_term,
            voted_for: self.voted_for,
        });
    }

    fn start_election(&mut self, out: &mut Actions<FastRaftMessage>) {
        if !self.config.contains(self.id) {
            out.observe(Observation::MessageIgnored {
                reason: "election by non-member suppressed",
            });
            self.reset_election_timer(out);
            return;
        }
        // Elections without an intervening leader contact suggest we may
        // have been silently evicted (our consensus messages are being
        // ignored); probe with a join request. A leader that still counts
        // us as a member answers `accepted` harmlessly, while one that
        // evicted us starts the §IV-D rejoin flow. The counter resets on
        // any authenticated leader contact.
        self.silent_elections += 1;
        if self.silent_elections >= 3 {
            let peers: Vec<NodeId> = self.config.peers(self.id).collect();
            out.send_many(peers, FastRaftMessage::JoinRequest { node: self.id });
        }
        self.role = Role::Candidate;
        self.current_term = self.current_term.next();
        self.voted_for = Some(self.id);
        self.persist_term_vote(out);
        self.election_votes.clear();
        self.election_votes.insert(self.id);
        self.recovery_votes.clear();
        // Our own self-approved entries participate in recovery.
        self.recovery_votes
            .push((self.id, self.log.self_approved()));
        out.observe(Observation::ElectionStarted {
            term: self.current_term,
        });
        // Advertise the dense leader-approved prefix, not `lastLeaderIndex`:
        // coverage is what acked matchIndexes certified, so it is what the
        // up-to-dateness comparison must protect (see `leader_coverage`).
        let coverage = self.leader_coverage();
        let msg = FastRaftMessage::RequestVote {
            term: self.current_term,
            candidate: self.id,
            last_leader_index: coverage,
            last_leader_term: self.log.term_at(coverage),
        };
        let peers: Vec<NodeId> = self.config.peers(self.id).collect();
        out.send_many(peers, msg);
        self.reset_election_timer(out);
        self.maybe_win(out);
    }

    /// §IV-C "When receiving a RequestVote message from a candidate".
    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: Term,
        candidate: NodeId,
        cand_last_leader_index: LogIndex,
        cand_last_leader_term: Term,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if !self.config.contains(candidate) {
            out.observe(Observation::MessageIgnored {
                reason: "vote request from non-member",
            });
            return;
        }
        // Lease hold: the ack this engine last sent carried a promise not
        // to elect anyone but its leader before `until` on this clock. The
        // request is dropped *without* adopting the candidate's term — a
        // partitioned candidate's term inflation must not depose a leader
        // whose lease a quorum still backs. The hold provably expires
        // before this node's own election timer can fire
        // (`Timing::validate` pins lease + skew ≤ election_min).
        if self.vote_hold.blocks(candidate, self.local_now) {
            out.observe(Observation::MessageIgnored {
                reason: "vote request during lease hold",
            });
            return;
        }
        // A leader whose own lease is live refuses too, again without
        // adopting the term: a quorum is promising not to elect anyone
        // else, so the candidate provably cannot win — stepping down would
        // only forfeit the lease's availability for nothing.
        if self.role == Role::Leader
            && self.lease.valid_at(
                self.local_now,
                &self.config,
                self.id,
                self.timing.max_clock_skew,
            )
        {
            out.observe(Observation::MessageIgnored {
                reason: "vote request at leader with live lease",
            });
            return;
        }
        if term < self.current_term {
            out.send(
                from,
                FastRaftMessage::RequestVoteReply {
                    term: self.current_term,
                    granted: false,
                    self_approved: Vec::new(),
                },
            );
            return;
        }
        if term > self.current_term {
            self.become_follower(term, None, out);
        }
        // Up-to-dateness over leader-approved entries only (§IV-C), compared
        // on the dense prefix both sides actually hold: `lastLeaderIndex`
        // can sit beyond a still-unfilled hole when inserts complete out of
        // order, and granting on that inflated index would hand leadership
        // to a candidate missing a committed entry (see `leader_coverage`).
        let my_coverage = self.leader_coverage();
        let my_term = self.log.term_at(my_coverage);
        let up_to_date =
            (cand_last_leader_term, cand_last_leader_index) >= (my_term, my_coverage);
        let can_vote = self.voted_for.is_none() || self.voted_for == Some(candidate);
        let granted = up_to_date && can_vote;
        let self_approved = if granted {
            self.voted_for = Some(candidate);
            self.persist_term_vote(out);
            self.reset_election_timer(out);
            self.log.self_approved()
        } else {
            Vec::new()
        };
        out.send(
            from,
            FastRaftMessage::RequestVoteReply {
                term: self.current_term,
                granted,
                self_approved,
            },
        );
    }

    fn on_vote_reply(
        &mut self,
        from: NodeId,
        term: Term,
        granted: bool,
        self_approved: Vec<(LogIndex, LogEntry)>,
        gate: &mut dyn InsertGate,
        out: &mut Actions<FastRaftMessage>,
    ) {
        if term > self.current_term {
            self.become_follower(term, None, out);
            return;
        }
        if self.role != Role::Candidate || term < self.current_term || !granted {
            return;
        }
        self.election_votes.insert(from);
        self.recovery_votes.push((from, self_approved));
        self.maybe_win(out);
        if self.role == Role::Leader {
            // Run recovery + first decision pass immediately.
            self.run_decision_loop(gate, out);
        }
    }

    fn maybe_win(&mut self, out: &mut Actions<FastRaftMessage>) {
        if self.role != Role::Candidate {
            return;
        }
        let quorum = self.config.classic_quorum();
        let valid = self
            .election_votes
            .iter()
            .filter(|v| self.config.contains(**v))
            .count();
        if valid >= quorum {
            self.become_leader(out);
        }
    }

    fn become_leader(&mut self, out: &mut Actions<FastRaftMessage>) {
        // Invariant (ROADMAP snapshot item b): a log grown through normal
        // protocol operation is never front-gapped — compaction only ever
        // consumes a contiguous occupied prefix. Only C-Raft's global-view
        // reconstruction (from partially compacted global-state entries)
        // can produce one; a leader election on such a view is legal (the
        // gap region is protected by §IV-B slot voting and commits never
        // cross it) but worth surfacing: the new leader serves the gap via
        // hole repair + quorum re-votes instead of its own entries.
        if let Some((horizon, first_retained)) = self.log.front_gap() {
            debug_assert_eq!(
                self.scope,
                LogScope::Global,
                "front-gapped log outside the C-Raft global reconstruction path"
            );
            out.observe(Observation::GlobalViewGap {
                horizon,
                first_retained,
            });
        }
        self.role = Role::Leader;
        self.silent_elections = 0;
        self.leader_hint = Some(self.id);
        out.observe(Observation::BecameLeader {
            term: self.current_term,
        });
        // Arm the lease behind the new-leader barrier: any lease the
        // deposed leader could still be serving under expires within
        // `lease_duration + max_clock_skew` of this instant, so waiting
        // that window out before serving lease reads makes the handover
        // safe even against grants this node never saw. Inert while
        // clockless or disabled.
        self.lease.clear();
        if !self.timing.lease_duration.is_zero() {
            self.lease.enable_after(
                self.local_now,
                self.timing.lease_duration + self.timing.max_clock_skew,
            );
        }
        // §IV-A: nextIndex initialized to last committed entry + 1.
        let start = self.commit_index.next();
        self.next_index.clear();
        self.match_index.clear();
        self.fast_match.clear();
        self.missed_beats.clear();
        for peer in self.config.iter() {
            self.next_index.insert(peer, start);
            self.match_index.insert(peer, LogIndex::ZERO);
        }
        self.match_index.insert(self.id, self.last_leader_index);
        self.assign_cursor = self.last_leader_index;
        self.last_proactive_repair = self.commit_index;
        // Recovery (§IV-C): replay every voter's self-approved entries into
        // possibleEntries so chosen entries are re-chosen.
        let recovered: usize = self.recovery_votes.iter().map(|(_, v)| v.len()).sum();
        let votes = std::mem::take(&mut self.recovery_votes);
        for (voter, entries) in votes {
            for (idx, entry) in entries {
                if idx > self.commit_index {
                    self.possible.record_vote(idx, entry, voter);
                }
            }
        }
        out.observe(Observation::RecoveryCompleted { entries: recovered });
        out.cancel_timer(self.timers.map(TimerKind::Election));
        self.dispatch_append_entries(out);
        out.set_timer(self.timers.map(TimerKind::Heartbeat), self.timing.heartbeat);
        out.set_timer(
            self.timers.map(TimerKind::LeaderTick),
            self.timing.decision_tick,
        );
    }

    // ------------------------------------------------------------------
    // Membership (§IV-D)
    // ------------------------------------------------------------------

    fn adopt_config(
        &mut self,
        cfg: Configuration,
        index: LogIndex,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let was_member = self.config.contains(self.id);
        self.config = cfg;
        self.config_index = index;
        let is_member = self.config.contains(self.id);
        if is_member && !was_member && self.join_contacts.is_some() {
            // We are in the configuration now; membership finalizes when the
            // entry commits or a JoinReply arrives, but we can already vote.
            self.finish_joining(out);
        }
        if !is_member && was_member {
            if self.role == Role::Leader {
                // A leader that removed itself steps down once the entry is
                // inserted; remaining members elect a successor.
                self.become_follower(self.current_term, None, out);
            }
            // Evicted (e.g. suspected of a silent leave while partitioned
            // or crashed): stop campaigning and rejoin explicitly (§IV-D).
            self.role = Role::Follower;
            self.join_contacts = Some(self.config.to_vec());
            out.cancel_timer(self.timers.map(TimerKind::Election));
            self.send_join_request(out);
        }
    }

    fn finish_joining(&mut self, out: &mut Actions<FastRaftMessage>) {
        if self.join_contacts.take().is_some() {
            out.cancel_timer(self.timers.map(TimerKind::JoinRetry));
            self.reset_election_timer(out);
        }
    }

    fn on_join_request(
        &mut self,
        from: NodeId,
        node: NodeId,
        out: &mut Actions<FastRaftMessage>,
    ) {
        let _ = from;
        if self.role != Role::Leader {
            // §IV-D: redirect to the leader.
            out.send(
                node,
                FastRaftMessage::JoinReply {
                    accepted: false,
                    leader_hint: self.leader_hint,
                },
            );
            return;
        }
        if self.config.contains(node) {
            out.send(
                node,
                FastRaftMessage::JoinReply {
                    accepted: true,
                    leader_hint: Some(self.id),
                },
            );
            return;
        }
        if self.learners.contains(&node) {
            return; // Duplicate request in progress (§IV-D).
        }
        // Catch the site up as a non-voting member: replicate from the
        // beginning of the log.
        self.learners.insert(node);
        self.next_index.insert(node, LogIndex::FIRST);
        self.match_index.insert(node, LogIndex::ZERO);
    }

    /// Once a learner catches up to the commit point, propose the
    /// configuration including it (one change at a time).
    fn maybe_finish_join(&mut self, node: NodeId, out: &mut Actions<FastRaftMessage>) {
        if !self.learners.contains(&node) {
            return;
        }
        let caught_up = self
            .match_index
            .get(&node)
            .copied()
            .unwrap_or(LogIndex::ZERO)
            >= self.commit_index;
        if caught_up {
            self.enqueue_reconfig(ReconfigOp::Add(node), out);
        }
    }

    fn on_leave_request(&mut self, node: NodeId, out: &mut Actions<FastRaftMessage>) {
        if self.role != Role::Leader {
            if let Some(leader) = self.leader_hint {
                out.send(leader, FastRaftMessage::LeaveRequest { node });
            }
            return;
        }
        if node == self.id {
            // Leader leaves: not supported in-place; callers should demote
            // first. Ignored defensively.
            out.observe(Observation::MessageIgnored {
                reason: "leader self-leave ignored",
            });
            return;
        }
        if self.config.contains(node) {
            self.enqueue_reconfig(ReconfigOp::Remove(node), out);
        }
    }

    fn enqueue_reconfig(&mut self, op: ReconfigOp, out: &mut Actions<FastRaftMessage>) {
        if !self.reconfig_queue.contains(&op) {
            self.reconfig_queue.push_back(op);
        }
        self.start_next_reconfig(out);
    }

    fn start_next_reconfig(&mut self, out: &mut Actions<FastRaftMessage>) {
        if self.pending_config.is_some() || self.role != Role::Leader {
            return;
        }
        if !self.leader_log_settled() {
            // A configuration entry goes at lastLeaderIndex + 1; with
            // undecided indices below, that could overwrite a chosen entry.
            // The queue drains from the leader tick once the log settles.
            return;
        }
        while let Some(op) = self.reconfig_queue.pop_front() {
            let (new_config, notify) = match op {
                ReconfigOp::Add(n) => {
                    if self.config.contains(n) {
                        continue;
                    }
                    (self.config.with_member(n), Some(n))
                }
                ReconfigOp::Remove(n) => {
                    if !self.config.contains(n) || n == self.id {
                        continue;
                    }
                    (self.config.without_member(n), None)
                }
            };
            let k = self.last_leader_index.next();
            let entry = LogEntry::config(self.current_term, self.fresh_id(out), new_config);
            self.insert_leader_entry(k, entry, out);
            self.pending_config = Some(k);
            self.pending_join_notify = notify;
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_profile_roundtrip() {
        for base in [
            TimerKind::Election,
            TimerKind::Heartbeat,
            TimerKind::LeaderTick,
            TimerKind::ProposalRetry,
            TimerKind::JoinRetry,
        ] {
            let g = TimerProfile::Global.map(base);
            assert_ne!(g, base, "global profile must rename {base:?}");
            assert_eq!(TimerProfile::Global.unmap(g), Some(base));
            assert_eq!(TimerProfile::Base.map(base), base);
            assert_eq!(TimerProfile::Base.unmap(base), Some(base));
        }
        assert_eq!(TimerProfile::Base.unmap(TimerKind::GlobalElection), None);
        assert_eq!(TimerProfile::Global.unmap(TimerKind::Election), None);
    }

    #[test]
    fn construction_validations() {
        let cfg: Configuration = (0..3).map(NodeId).collect();
        let e = FastRaftEngine::new(
            NodeId(0),
            cfg,
            LogScope::Global,
            TimerProfile::Base,
            Timing::lan(),
            SimRng::seed_from_u64(1),
        );
        assert_eq!(e.role(), Role::Follower);
        assert!(!e.is_joining());
        assert_eq!(e.commit_index(), LogIndex::ZERO);
    }

    #[test]
    #[should_panic(expected = "not in bootstrap")]
    fn new_requires_membership() {
        let cfg: Configuration = (0..3).map(NodeId).collect();
        FastRaftEngine::new(
            NodeId(9),
            cfg,
            LogScope::Global,
            TimerProfile::Base,
            Timing::lan(),
            SimRng::seed_from_u64(1),
        );
    }

    #[test]
    fn joining_node_has_no_config() {
        let e = FastRaftEngine::joining(
            NodeId(9),
            vec![NodeId(0), NodeId(1)],
            LogScope::Global,
            TimerProfile::Base,
            Timing::lan(),
            SimRng::seed_from_u64(1),
        );
        assert!(e.is_joining());
        assert!(e.config().is_empty());
    }
}
