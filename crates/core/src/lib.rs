//! # `consensus-core` — Fast Raft and C-Raft
//!
//! The paper's primary contribution:
//!
//! - [`FastRaftNode`] — Fast Raft (§IV): a Fast-Paxos-style Raft variant
//!   that commits in **two** message rounds on the fast track (proposer
//!   broadcast + votes to the leader, fast quorum ⌈3M/4⌉), falling back to
//!   a classic track under loss or contention; leader election judges
//!   up-to-dateness on leader-approved entries and runs a **recovery**
//!   replay of self-approved entries; membership is self-announced with
//!   **silent-leave** detection via a member timeout.
//! - [`CRaftNode`] — C-Raft (§V): hierarchical consensus for geo-distributed
//!   systems. Each cluster runs Fast Raft on a local log; cluster leaders
//!   form a global Fast Raft group replicating *batches* of locally
//!   committed entries, gating every global-log insert on an intra-cluster
//!   *global state entry* so successor leaders inherit inter-cluster state.
//! - [`FastRaftEngine`] — the reusable single-level engine both are built
//!   from, parameterized by log scope, timer profile, and an insert
//!   [`gate`](InsertGate).
//!
//! # Examples
//!
//! ```
//! use consensus_core::FastRaftNode;
//! use des::SimRng;
//! use raft::{Role, Timing};
//! use raft::testkit::Lockstep;
//! use wire::{Configuration, NodeId, TimerKind};
//!
//! let cfg: Configuration = (0..5).map(NodeId).collect();
//! let nodes = (0..5).map(|i| {
//!     FastRaftNode::new(NodeId(i), cfg.clone(), Timing::lan(), SimRng::seed_from_u64(i))
//! });
//! let mut net = Lockstep::new(nodes);
//! net.fire(NodeId(0), TimerKind::Election);
//! net.deliver_all();
//! assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod craft;
mod engine;
mod fastraft;
mod gate;
mod message;
mod possible;

pub use craft::{build_deployment, CRaftConfig, CRaftNode};
pub use engine::{FastRaftEngine, ProposalMode, TimerProfile};
pub use fastraft::FastRaftNode;
pub use gate::{GatePurpose, GateRecorder, GateRequest, GateToken, GateVerdict, InsertGate, ProceedGate};
pub use message::{CRaftMessage, FastRaftMessage};
pub use possible::PossibleEntries;
