//! C-Raft: hierarchical consensus for globally distributed systems (§V).
//!
//! Every site runs intra-cluster Fast Raft on a **local log**. The site
//! currently leading its cluster additionally participates in inter-cluster
//! Fast Raft over the **global log**, whose membership is the set of cluster
//! leaders. Locally committed data entries are accumulated into batches
//! (default: 10, as in §VI-C) and proposed to the global log.
//!
//! ## Global state entries (§V-B)
//!
//! Every insert into a local leader's global log — from a proposer
//! broadcast, the global decision loop, or a global AppendEntries — is
//! *gated*: the leader first commits a [`wire::GlobalState`] entry in its
//! cluster's local log recording `(global index, global entry, global
//! commit)`. Only after that local commit does the global-level action
//! (vote, fast-quorum check, ack) proceed. A successor local leader
//! reconstructs the inter-cluster state from these entries, so a leader
//! crash never loses the cluster's view of the global log.
//!
//! ## Leader changes
//!
//! A newly elected local leader (a) rebuilds its global log from the local
//! log's global state entries, (b) re-registers its cluster's possibly
//! uncommitted batches for retry, and (c) joins the global configuration via
//! a global join request (§V-C); the global leader's member timeout evicts
//! the crashed predecessor.

use std::collections::{HashMap, HashSet};

use des::SimRng;
use raft::{Role, Timing};
use storage::StableState;
use wire::{
    Actions, BatchItem, ClientOp, ClientOutcome, ClientRequest, ClusterId, Configuration,
    Consistency, EntryId, GlobalState, LogEntry, LogIndex, LogScope, NodeId, Observation, Payload,
    SessionId, Term, TimerKind,
};

use crate::engine::{FastRaftEngine, ProposalMode, TimerProfile};
use crate::gate::{GateRecorder, GateToken, ProceedGate};
use crate::message::{CRaftMessage, FastRaftMessage};

/// Tuning parameters for a C-Raft deployment.
#[derive(Clone, Debug)]
pub struct CRaftConfig {
    /// The cluster this site belongs to.
    pub cluster: ClusterId,
    /// Timing for intra-cluster consensus (paper: 100 ms heartbeat).
    pub local_timing: Timing,
    /// Timing for inter-cluster consensus (paper: 500 ms heartbeat).
    pub global_timing: Timing,
    /// Locally committed entries per global batch (paper §VI-C: 10).
    pub batch_size: usize,
    /// Byte budget per global batch: a batch is cut before the item whose
    /// encoded size would push it past this many bytes, so one wide-area
    /// proposal never exceeds the link budget — except a single over-sized
    /// item, which ships alone (0 disables the byte cap). The budget counts
    /// item bytes only; the Batch/GlobalState/LogEntry wrappers add ~70
    /// bytes on top, so a batch cut exactly at a `max_bytes_per_append`-
    /// sized budget can still exceed one AppendEntries byte budget by the
    /// wrapper overhead and ship via the budget's always-admit-first rule.
    /// Set this a little below `max_bytes_per_append` when that matters.
    pub max_batch_bytes: usize,
    /// Flush a partial batch after this many milliseconds of inactivity
    /// (0 disables time-based flushing).
    pub batch_flush_ms: u64,
    /// Snapshot threshold for the **global** log, overriding
    /// `global_timing.snapshot_threshold`: once a site's retained decided
    /// global prefix exceeds this many entries it compacts into a snapshot,
    /// and a cluster leader rejoining the global level past the horizon
    /// catches up by snapshot transfer. The local log keeps using
    /// `local_timing.snapshot_threshold`. `0` disables global compaction.
    pub global_snapshot_threshold: u64,
    /// How batches are proposed at the global level. The default,
    /// [`ProposalMode::LeaderForward`], serializes index assignment at the
    /// global leader so concurrent per-cluster batches never collide;
    /// [`ProposalMode::Broadcast`] is the paper-literal fast track, kept as
    /// an ablation (it collapses under many-cluster contention — Ext-A).
    pub global_proposal_mode: ProposalMode,
}

impl CRaftConfig {
    /// The paper's evaluation configuration for a given cluster.
    pub fn paper(cluster: ClusterId) -> Self {
        CRaftConfig {
            cluster,
            local_timing: Timing::lan(),
            global_timing: Timing::wan(),
            batch_size: 10,
            max_batch_bytes: Timing::wan().max_bytes_per_append,
            batch_flush_ms: 1000,
            global_snapshot_threshold: Timing::wan().snapshot_threshold,
            global_proposal_mode: ProposalMode::LeaderForward,
        }
    }

    /// The global-level timing with the global snapshot threshold applied.
    fn effective_global_timing(&self) -> Timing {
        Timing {
            snapshot_threshold: self.global_snapshot_threshold,
            ..self.global_timing
        }
    }
}

/// The inter-cluster half of a cluster leader.
#[derive(Debug)]
struct GlobalSide {
    engine: FastRaftEngine,
    gate: GateRecorder,
    /// Local proposal id of a pending global-state entry → the gate token
    /// to resume once it commits locally.
    waiting: HashMap<EntryId, GateToken>,
}

/// A C-Raft site (§V).
#[derive(Debug)]
pub struct CRaftNode {
    id: NodeId,
    cfg: CRaftConfig,
    local: FastRaftEngine,
    local_gate: ProceedGate,
    global: Option<GlobalSide>,
    /// Bootstrap membership of the global level (the designated initial
    /// leaders of each cluster).
    global_bootstrap: Configuration,
    /// Cached global-level persistent identity for (re)activation.
    global_term: Term,
    global_voted_for: Option<NodeId>,
    /// Persisted global-log snapshot inherited at recovery, handed to the
    /// global engine on (re)activation.
    global_snapshot: Option<wire::Snapshot>,
    /// Persisted global proposal-sequence floor: the reconstruction resumes
    /// the global engine's `EntryId` counter here so batches proposed after
    /// a crash or reactivation never reuse a pre-crash id.
    global_seq_floor: u64,
    /// Locally committed data entries awaiting batching (leader only).
    batch_buf: Vec<(LogIndex, BatchItem)>,
    batch_seq: u64,
    /// Highest global commit index this site has learned (from its own
    /// global engine or from global state entries).
    global_commit_seen: LogIndex,
    /// Linearizable (global) reads routed through this cluster leader:
    /// `(session, seq)` → the gateway awaiting the answer.
    global_read_waiters: HashMap<(SessionId, u64), NodeId>,
    /// Designated initial leaders race their first election quickly so the
    /// bootstrap global configuration (which names them) actually forms.
    boost_first_election: bool,
}

impl CRaftNode {
    /// Creates a C-Raft site.
    ///
    /// `local_members` is the bootstrap membership of this site's cluster;
    /// `global_bootstrap` names the designated initial leader of every
    /// cluster (the initial global configuration). A site that later wins
    /// its cluster's election joins the global level dynamically.
    ///
    /// # Panics
    ///
    /// Panics if the local bootstrap omits `id`, either configuration is
    /// empty, or a timing is invalid.
    pub fn new(
        id: NodeId,
        local_members: Configuration,
        global_bootstrap: Configuration,
        cfg: CRaftConfig,
        rng: SimRng,
    ) -> Self {
        assert!(
            !global_bootstrap.is_empty(),
            "global bootstrap configuration is empty"
        );
        let local_rng = rng.split("local");
        let boost_first_election = global_bootstrap.contains(id);
        CRaftNode {
            id,
            local: FastRaftEngine::new(
                id,
                local_members,
                LogScope::Local,
                TimerProfile::Base,
                cfg.local_timing,
                local_rng,
            ),
            local_gate: ProceedGate,
            global: None,
            global_bootstrap,
            global_term: Term::ZERO,
            global_voted_for: None,
            global_snapshot: None,
            global_seq_floor: 0,
            batch_buf: Vec::new(),
            batch_seq: 0,
            global_commit_seen: LogIndex::ZERO,
            global_read_waiters: HashMap::new(),
            cfg,
            boost_first_election,
        }
    }

    /// Rebuilds a site from stable storage after a crash. The site restarts
    /// as a cluster follower; if it wins a local election again, the global
    /// side reactivates from the persisted global identity plus the local
    /// log's global state entries.
    pub fn recover(
        id: NodeId,
        stable: &StableState,
        local_bootstrap: Configuration,
        global_bootstrap: Configuration,
        cfg: CRaftConfig,
        rng: SimRng,
    ) -> Self {
        let local_rng = rng.split("local");
        let local = FastRaftEngine::recover(
            id,
            stable.local.current_term,
            stable.local.voted_for,
            stable.local.log.clone(),
            stable.local.snapshot.clone(),
            local_bootstrap,
            LogScope::Local,
            TimerProfile::Base,
            cfg.local_timing,
            local_rng,
            stable.local.proposal_seq_floor,
        );
        let global_snapshot = stable.global.snapshot.clone();
        let global_commit_seen = global_snapshot
            .as_ref()
            .map_or(LogIndex::ZERO, |s| s.last_index);
        CRaftNode {
            id,
            local,
            local_gate: ProceedGate,
            global: None,
            global_bootstrap,
            global_term: stable.global.current_term,
            global_voted_for: stable.global.voted_for,
            global_snapshot,
            global_seq_floor: stable.global.proposal_seq_floor,
            batch_buf: Vec::new(),
            batch_seq: 0,
            global_commit_seen,
            global_read_waiters: HashMap::new(),
            cfg,
            boost_first_election: false,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The cluster this site belongs to.
    pub fn cluster(&self) -> ClusterId {
        self.cfg.cluster
    }

    /// Role at the **local** (intra-cluster) level.
    pub fn local_role(&self) -> Role {
        self.local.role()
    }

    /// `true` while this site leads its cluster.
    pub fn is_local_leader(&self) -> bool {
        self.local.is_leader()
    }

    /// `true` while this site leads the global level.
    pub fn is_global_leader(&self) -> bool {
        self.global.as_ref().is_some_and(|g| g.engine.is_leader())
    }

    /// The local (intra-cluster) log.
    pub fn local_log(&self) -> &wire::SparseLog {
        self.local.log()
    }

    /// Commit index of the local log.
    pub fn local_commit_index(&self) -> LogIndex {
        self.local.commit_index()
    }

    /// The global log as this site knows it: the live engine's log on an
    /// active leader, otherwise a reconstruction from local global-state
    /// entries.
    pub fn global_log_view(&self) -> wire::SparseLog {
        if let Some(g) = &self.global {
            return g.engine.log().clone();
        }
        self.reconstruct_global_log()
    }

    /// The highest global commit index this site has learned.
    pub fn global_commit_seen(&self) -> LogIndex {
        let engine_commit = self
            .global
            .as_ref()
            .map_or(LogIndex::ZERO, |g| g.engine.commit_index());
        self.global_commit_seen.max(engine_commit)
    }

    /// The local consensus engine (read-only), for assertions.
    pub fn local_engine(&self) -> &FastRaftEngine {
        &self.local
    }

    /// The global consensus engine while active (leaders only).
    pub fn global_engine(&self) -> Option<&FastRaftEngine> {
        self.global.as_ref().map(|g| &g.engine)
    }

    /// Entries buffered toward the next batch.
    pub fn batch_backlog(&self) -> usize {
        self.batch_buf.len()
    }

    /// Gate debt of the active global side, as `(pending, reservations)`:
    /// inserts parked behind the intra-cluster gate and decision-insert
    /// reservations blocking the global engine's settled check. `(0, 0)`
    /// when this site is not a cluster leader. Liveness oracles assert the
    /// debt drains to `(0, 0)` at quiescence — a reservation outliving
    /// every pending gate wedges the global level permanently.
    pub fn global_gate_debt(&self) -> (usize, usize) {
        // `pending_gate_count` is token-accurate: every deferred insert
        // parks its continuation at `begin` time, before the recorder drains
        // or the waiting map fills, and both refer to the same tokens.
        self.global.as_ref().map_or((0, 0), |g| {
            (g.engine.pending_gate_count(), g.engine.gated_decision_count())
        })
    }

    // ------------------------------------------------------------------
    // Global-side lifecycle
    // ------------------------------------------------------------------

    fn reconstruct_global_log(&self) -> wire::SparseLog {
        let mut g = wire::SparseLog::new();
        for (_, entry) in self.local.log().iter() {
            if let Payload::GlobalState(gs) = &entry.payload {
                g.insert(gs.index, (*gs.entry).clone());
            }
        }
        g
    }

    fn activate_global(&mut self, out: &mut Actions<CRaftMessage>) {
        if self.global.is_some() {
            return;
        }
        let global_log = self.reconstruct_global_log();
        let mut max_gc = LogIndex::ZERO;
        let mut batched_ids: HashSet<EntryId> = HashSet::new();
        for (_, entry) in self.local.log().iter() {
            if let Payload::GlobalState(gs) = &entry.payload {
                max_gc = max_gc.max(gs.global_commit);
                if let Payload::Batch(b) = &gs.entry.payload {
                    for item in b.items.iter() {
                        batched_ids.insert(item.id);
                    }
                }
            }
        }
        self.global_commit_seen = self.global_commit_seen.max(max_gc);

        let rng = SimRng::seed_from_u64(
            self.id.as_u64() ^ self.local.current_term().as_u64().wrapping_mul(0x9E37),
        );
        // The inherited global snapshot (persisted across crashes, cached
        // across deactivations) covers the prefix whose global-state entries
        // may have been compacted out of the local log; recovery installs it
        // on the reconstruction, establishing the commit floor and the
        // boundary term.
        let mut engine = FastRaftEngine::recover(
            self.id,
            self.global_term,
            self.global_voted_for,
            global_log,
            self.global_snapshot.clone(),
            self.global_bootstrap.clone(),
            LogScope::Global,
            TimerProfile::Global,
            self.cfg.effective_global_timing(),
            rng,
            self.global_seq_floor,
        );
        engine.set_proposal_mode(self.cfg.global_proposal_mode);
        let mut ea: Actions<FastRaftMessage> = Actions::new();
        engine.bootstrap(&mut ea);
        // Invariant probe (ROADMAP snapshot item b): a flapping leader that
        // deactivated and reactivated before eviction, while local
        // compaction discarded interim global-state entries, can rebuild a
        // **front-gapped** view — entries above a hole right after the
        // cached snapshot's horizon. The view is safe to hold (commits
        // never cross the gap; §IV-B slot voting protects decided indices)
        // but the site must not pretend the gap region is known: surface
        // the condition and let the global leader's resend or snapshot
        // transfer repair it.
        if let Some((horizon, first_retained)) = engine.log().front_gap() {
            ea.observe(Observation::GlobalViewGap {
                horizon,
                first_retained,
            });
        }
        self.global_commit_seen = self.global_commit_seen.max(engine.commit_index());

        // Recover this cluster's possibly-in-flight batches: any batch of
        // ours sitting uncommitted in the reconstructed global log gets
        // retried under its original id.
        let commit_floor = self.global_commit_seen;
        let mut inherited: Vec<(EntryId, Payload, LogIndex)> = Vec::new();
        for (idx, entry) in engine.log().iter() {
            if idx <= commit_floor {
                continue;
            }
            if let Payload::Batch(b) = &entry.payload {
                if b.cluster == self.cfg.cluster {
                    inherited.push((entry.id, entry.payload.clone(), idx));
                }
            }
        }
        for (id, payload, idx) in inherited {
            engine.track_pending_proposal(id, payload, idx, &mut ea);
        }

        let mut side = GlobalSide {
            engine,
            gate: GateRecorder::new(),
            waiting: HashMap::new(),
        };
        let drained = side.gate.drain();
        debug_assert!(drained.is_empty());
        self.global = Some(side);
        self.forward_global_actions(ea, out);

        // Re-batch locally committed data entries not yet covered by any
        // batch (the predecessor may have crashed mid-stream). Items keep
        // their session keys: if the predecessor's covering batch turns out
        // to exist after all, the global log's item-wise session dedup
        // suppresses the re-application.
        let mut rebatch: Vec<(LogIndex, BatchItem)> = Vec::new();
        for (idx, entry) in self.local.log().iter() {
            if idx > self.local.commit_index() {
                break;
            }
            if let Some(item) = batchable_item(entry) {
                if !batched_ids.contains(&entry.id) {
                    rebatch.push((idx, item));
                }
            }
        }
        self.batch_buf = rebatch;
        self.maybe_flush_batch(out);
    }

    fn deactivate_global(&mut self, out: &mut Actions<CRaftMessage>) {
        // Global reads routed through this (former) leader can no longer be
        // confirmed here; tell their gateways to retry.
        let waiters: Vec<((SessionId, u64), NodeId)> =
            self.global_read_waiters.drain().collect();
        for ((session, seq), waiter) in waiters {
            self.reply_waiter(waiter, session, seq, ClientOutcome::Retry, out);
        }
        let Some(side) = self.global.take() else {
            return;
        };
        self.global_term = side.engine.current_term();
        self.global_voted_for = None; // conservatively forget; persisted copy rules
        self.global_seq_floor = self.global_seq_floor.max(side.engine.reserved_seqs());
        // Cache the engine's snapshot for the next activation: a later
        // reconstruction from the (possibly further-compacted) local log
        // needs the horizon and its boundary term.
        if let Some(s) = side.engine.current_snapshot() {
            let newer = self
                .global_snapshot
                .as_ref()
                .is_none_or(|old| old.last_index <= s.last_index);
            if newer {
                self.global_snapshot = Some(s);
            }
        }
        self.batch_buf.clear();
        for kind in [
            TimerKind::GlobalElection,
            TimerKind::GlobalHeartbeat,
            TimerKind::GlobalLeaderTick,
            TimerKind::GlobalProposalRetry,
            TimerKind::GlobalJoinRetry,
            TimerKind::BatchFlush,
        ] {
            out.cancel_timer(kind);
        }
    }

    // ------------------------------------------------------------------
    // Batching (§V-A)
    // ------------------------------------------------------------------

    /// Where to cut the next global batch, if one is ready. Admission
    /// mirrors [`wire::AppendBudget`]: an item is admitted while both the
    /// count cap and the byte budget allow it, the item that would breach
    /// the byte budget is excluded (so byte-cut batches stay within
    /// budget), and the first item is always admitted — a single
    /// over-sized value ships alone rather than wedging batching.
    fn next_batch_cut(&self) -> Option<usize> {
        let unbounded = self.cfg.max_batch_bytes == 0;
        let mut n = 0usize;
        let mut bytes = 0usize;
        for (_, item) in self.batch_buf.iter() {
            let sz = wire::Wire::encoded_len(item);
            let admit = n == 0
                || (n < self.cfg.batch_size
                    && (unbounded || bytes + sz <= self.cfg.max_batch_bytes));
            if !admit {
                // A cap binds and more items wait behind it: cut now.
                return Some(n);
            }
            n += 1;
            bytes += sz;
        }
        // Everything buffered was admitted. Cut when a cap is exactly
        // filled; otherwise wait for more items or the flush timer.
        if n > 0 && (n >= self.cfg.batch_size || (!unbounded && bytes >= self.cfg.max_batch_bytes))
        {
            Some(n)
        } else {
            None
        }
    }

    fn maybe_flush_batch(&mut self, out: &mut Actions<CRaftMessage>) {
        if self.global.is_none() {
            return;
        }
        while let Some(cut) = self.next_batch_cut() {
            let chunk: Vec<BatchItem> =
                self.batch_buf.drain(..cut).map(|(_, item)| item).collect();
            self.propose_batch(chunk, out);
        }
        if !self.batch_buf.is_empty() && self.cfg.batch_flush_ms > 0 {
            out.timers.push(wire::TimerCmd::Set {
                kind: TimerKind::BatchFlush,
                after: des::SimDuration::from_millis(self.cfg.batch_flush_ms),
            });
        }
    }

    fn flush_partial_batch(&mut self, out: &mut Actions<CRaftMessage>) {
        if self.global.is_none() || self.batch_buf.is_empty() {
            return;
        }
        let chunk: Vec<BatchItem> = self.batch_buf.drain(..).map(|(_, item)| item).collect();
        self.propose_batch(chunk, out);
    }

    fn propose_batch(&mut self, items: Vec<BatchItem>, out: &mut Actions<CRaftMessage>) {
        let batch = wire::Batch::new(self.cfg.cluster, self.batch_seq, items);
        self.batch_seq += 1;
        let Some(side) = self.global.as_mut() else {
            return;
        };
        let mut ea: Actions<FastRaftMessage> = Actions::new();
        side.engine
            .propose_payload(Payload::Batch(batch), &mut side.gate, &mut ea);
        self.forward_global_actions(ea, out);
    }

    // ------------------------------------------------------------------
    // Action plumbing
    // ------------------------------------------------------------------

    /// Processes effects produced by the **local** engine: reacts to
    /// leadership changes, batches local data commits, resumes gated global
    /// inserts, and wraps messages.
    fn forward_local_actions(
        &mut self,
        mut ea: Actions<FastRaftMessage>,
        out: &mut Actions<CRaftMessage>,
    ) {
        let mut became_leader = false;
        let mut lost_leader = false;
        for obs in &ea.observations {
            match obs {
                Observation::BecameLeader { .. } => became_leader = true,
                Observation::BecameFollower { .. } => lost_leader = true,
                _ => {}
            }
        }
        let commits = std::mem::take(&mut ea.commits);
        // Wrap and emit the raw effects first so message order stays causal.
        let gc = self.global_commit_seen();
        for (to, mut msg) in ea.sends.drain(..) {
            // §V-B: cluster leaders piggyback their global commit index on
            // local AppendEntries so members track global commits.
            if let FastRaftMessage::AppendEntries { global_commit, .. } = &mut msg {
                *global_commit = gc;
            }
            out.send(to, CRaftMessage::Local(msg));
        }
        out.timers.append(&mut ea.timers);
        out.persists.append(&mut ea.persists);
        out.observations.append(&mut ea.observations);

        if became_leader {
            self.activate_global(out);
        }
        if lost_leader && !self.local.is_leader() {
            self.deactivate_global(out);
        }

        for commit in commits {
            debug_assert_eq!(commit.scope, LogScope::Local);
            self.on_local_commit(&commit.entry, commit.index, out);
            out.commits.push(commit);
        }
        self.maybe_flush_batch(out);
    }

    fn on_local_commit(
        &mut self,
        entry: &LogEntry,
        index: LogIndex,
        out: &mut Actions<CRaftMessage>,
    ) {
        match &entry.payload {
            Payload::Data(_) | Payload::Write { .. } | Payload::Register { .. }
                if self.global.is_some() => {
                    if let Some(item) = batchable_item(entry) {
                        self.batch_buf.push((index, item));
                    }
                }
            Payload::GlobalState(gs) => {
                self.global_commit_seen = self.global_commit_seen.max(gs.global_commit);
                // Resume the gated global insert this entry replicated.
                if let Some(side) = self.global.as_mut() {
                    if let Some(token) = side.waiting.remove(&entry.id) {
                        let mut ea: Actions<FastRaftMessage> = Actions::new();
                        side.engine.gate_ready(token, &mut side.gate, &mut ea);
                        self.forward_global_actions(ea, out);
                    }
                }
            }
            _ => {}
        }
    }

    /// Processes effects produced by the **global** engine: turns gate
    /// requests into local global-state proposals, wraps messages.
    fn forward_global_actions(
        &mut self,
        mut ea: Actions<FastRaftMessage>,
        out: &mut Actions<CRaftMessage>,
    ) {
        for (to, msg) in ea.sends.drain(..) {
            out.send(to, CRaftMessage::Global(msg));
        }
        out.timers.append(&mut ea.timers);
        out.persists.append(&mut ea.persists);
        for commit in ea.commits.drain(..) {
            debug_assert_eq!(commit.scope, LogScope::Global);
            self.global_commit_seen = self.global_commit_seen.max(commit.index);
            out.commits.push(commit);
        }
        // Client responses produced by the global engine answer reads this
        // cluster leader routed on behalf of a gateway: deliver them to the
        // waiting gateway instead of surfacing them at this node.
        for obs in ea.observations.drain(..) {
            if let Observation::ClientResponse {
                session,
                seq,
                outcome,
            } = &obs
            {
                if let Some(waiter) = self.global_read_waiters.remove(&(*session, *seq)) {
                    self.reply_waiter(waiter, *session, *seq, outcome.clone(), out);
                    continue;
                }
            }
            out.observations.push(obs);
        }
        // A snapshot install advances the engine's commit floor without
        // per-entry commit notifications; track the jump here.
        if let Some(side) = &self.global {
            self.global_commit_seen = self.global_commit_seen.max(side.engine.commit_index());
        }

        // Gate requests become local global-state proposals (§V-B).
        let requests = match self.global.as_mut() {
            Some(side) => side.gate.drain(),
            None => Vec::new(),
        };
        for req in requests {
            let gc = self.global_commit_seen();
            let gs = GlobalState {
                index: req.index,
                entry: std::sync::Arc::new(req.entry.clone()),
                global_commit: gc,
            };
            let mut la: Actions<FastRaftMessage> = Actions::new();
            let local_id =
                self.local
                    .propose_payload(Payload::GlobalState(gs), &mut self.local_gate, &mut la);
            if let Some(side) = self.global.as_mut() {
                side.waiting.insert(local_id, req.token);
            }
            self.forward_local_actions(la, out);
        }
    }

    // ------------------------------------------------------------------
    // Global linearizable reads
    // ------------------------------------------------------------------

    /// Routes a linearizable (global) read through this cluster leader's
    /// global engine on behalf of `waiter` (the gateway): the global engine
    /// either runs the ReadIndex round itself (global leader) or forwards
    /// to the global leader; the eventual outcome is relayed back through
    /// [`CRaftNode::forward_global_actions`].
    fn global_linearizable_read(
        &mut self,
        session: SessionId,
        seq: u64,
        waiter: NodeId,
        out: &mut Actions<CRaftMessage>,
    ) {
        if self.global.is_none() {
            // Activation race: locally elected but the global side is not
            // up; the client retries.
            self.reply_waiter(waiter, session, seq, ClientOutcome::Retry, out);
            return;
        }
        self.global_read_waiters.insert((session, seq), waiter);
        let mut ea: Actions<FastRaftMessage> = Actions::new();
        if let Some(side) = self.global.as_mut() {
            side.engine.on_client_request(
                ClientRequest::read(session, seq, Consistency::Linearizable),
                &mut side.gate,
                &mut ea,
            );
        }
        self.forward_global_actions(ea, out);
    }

    /// Answers a gateway waiting on a global read: locally (observation)
    /// when the gateway is this node, via a local-level `ClientReply`
    /// otherwise.
    fn reply_waiter(
        &mut self,
        waiter: NodeId,
        session: SessionId,
        seq: u64,
        outcome: ClientOutcome,
        out: &mut Actions<CRaftMessage>,
    ) {
        // A Redirect produced at the *global* level names a cluster leader
        // in some other cluster — useless (and actively harmful) as a
        // local-level hint at the gateway, whose engine would adopt it as
        // its local leader_hint. Degrade to Retry: the re-routed attempt
        // goes through this cluster leader again, which knows the updated
        // global hint.
        let outcome = match outcome {
            ClientOutcome::Redirect { .. } => ClientOutcome::Retry,
            other => other,
        };
        if waiter == self.id {
            out.observe(Observation::ClientResponse {
                session,
                seq,
                outcome,
            });
        } else {
            out.send(
                waiter,
                CRaftMessage::Local(FastRaftMessage::ClientReply {
                    session,
                    seq,
                    outcome,
                }),
            );
        }
    }
}

impl wire::ConsensusProtocol for CRaftNode {
    type Message = CRaftMessage;

    fn id(&self) -> NodeId {
        self.id
    }

    fn set_local_clock(&mut self, now: des::SimTime) {
        // One physical site, one clock: both levels read the same instant.
        // The global engine (when active) collects grants from the *other
        // clusters' leaders* — the recursive lease of the hierarchy.
        self.local.set_local_clock(now);
        if let Some(side) = self.global.as_mut() {
            side.engine.set_local_clock(now);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: CRaftMessage, out: &mut Actions<CRaftMessage>) {
        match msg {
            CRaftMessage::Local(FastRaftMessage::ClientRead { session, seq })
                if self.is_local_leader() =>
            {
                // A linearizable read forwarded by a cluster member: in
                // C-Raft these are **global** reads, confirmed through the
                // global engine rather than by local leadership.
                self.global_linearizable_read(session, seq, from, out);
            }
            CRaftMessage::Local(m) => {
                if let FastRaftMessage::AppendEntries { global_commit, .. } = &m {
                    self.global_commit_seen = self.global_commit_seen.max(*global_commit);
                }
                let mut ea: Actions<FastRaftMessage> = Actions::new();
                self.local.on_message(from, m, &mut self.local_gate, &mut ea);
                self.forward_local_actions(ea, out);
            }
            CRaftMessage::Global(m) => {
                let Some(side) = self.global.as_mut() else {
                    out.observe(Observation::MessageIgnored {
                        reason: "global traffic at non-leader",
                    });
                    return;
                };
                let mut ea: Actions<FastRaftMessage> = Actions::new();
                side.engine.on_message(from, m, &mut side.gate, &mut ea);
                self.forward_global_actions(ea, out);
            }
        }
    }

    fn on_timer(&mut self, kind: TimerKind, out: &mut Actions<CRaftMessage>) {
        if kind == TimerKind::BatchFlush {
            self.flush_partial_batch(out);
            return;
        }
        if let Some(base) = TimerProfile::Base.unmap(kind) {
            let mut ea: Actions<FastRaftMessage> = Actions::new();
            self.local.on_timer(base, &mut self.local_gate, &mut ea);
            self.forward_local_actions(ea, out);
            return;
        }
        if let Some(base) = TimerProfile::Global.unmap(kind) {
            let Some(side) = self.global.as_mut() else {
                return;
            };
            let mut ea: Actions<FastRaftMessage> = Actions::new();
            side.engine.on_timer(base, &mut side.gate, &mut ea);
            self.forward_global_actions(ea, out);
        }
    }

    fn on_client_request(&mut self, req: ClientRequest, out: &mut Actions<CRaftMessage>) {
        match &req.op {
            // Linearizable reads are global reads (§V): a cluster leader
            // confirms through the global engine; members forward to their
            // cluster leader through the local engine's gateway machinery.
            ClientOp::Read(Consistency::Linearizable) if self.is_local_leader() => {
                self.global_linearizable_read(req.session, req.seq, self.id, out);
            }
            // Stale-global reads answer immediately from this site's view
            // of the global commit floor — the freshest floor it has
            // learned from its own global engine or from committed
            // global-state entries. No wide-area round; the floor is
            // monotone per site but may trail the true global commit.
            ClientOp::Read(Consistency::StaleGlobal) => {
                out.observe(Observation::ClientResponse {
                    session: req.session,
                    seq: req.seq,
                    outcome: ClientOutcome::ReadOk {
                        scope: LogScope::Global,
                        commit_floor: self.global_commit_seen(),
                    },
                });
            }
            // Writes (acked at local commit, §V-A), stale-local reads,
            // registrations, and read forwarding all ride the local engine.
            _ => {
                let mut ea: Actions<FastRaftMessage> = Actions::new();
                self.local
                    .on_client_request(req, &mut self.local_gate, &mut ea);
                self.forward_local_actions(ea, out);
            }
        }
    }

    fn bootstrap(&mut self, out: &mut Actions<CRaftMessage>) {
        let mut ea: Actions<FastRaftMessage> = Actions::new();
        self.local.bootstrap(&mut ea);
        self.forward_local_actions(ea, out);
        if self.boost_first_election {
            // Overrides the randomized election timeout armed above (same
            // kind replaces): the designated leader stands first.
            let jitter = 50 + (self.id.as_u64() % 37);
            out.set_timer(
                TimerKind::Election,
                des::SimDuration::from_millis(jitter),
            );
        }
    }

    fn pending_applies(&self) -> u64 {
        self.local.pending_applies()
            + self
                .global
                .as_ref()
                .map_or(0, |side| side.engine.pending_applies())
    }

    fn drain_applies(&mut self, out: &mut Actions<CRaftMessage>) {
        // Local first: a locally applied commit may feed the global batcher
        // (forward_local_actions consumes the commit records), so draining
        // local before global keeps the intra-step ordering of the inline
        // path.
        let mut ea: Actions<FastRaftMessage> = Actions::new();
        self.local.drain_applies(&mut ea);
        self.forward_local_actions(ea, out);
        if let Some(side) = self.global.as_mut() {
            let mut ea: Actions<FastRaftMessage> = Actions::new();
            side.engine.drain_applies(&mut ea);
            self.forward_global_actions(ea, out);
        }
    }
}

/// The global batch item for a locally committed client value, if the entry
/// carries one (plain data, or a session write keeping its dedup key).
fn batchable_item(entry: &LogEntry) -> Option<BatchItem> {
    match &entry.payload {
        Payload::Data(data) => Some(BatchItem {
            id: entry.id,
            key: None,
            data: data.clone(),
        }),
        Payload::Write { session, seq, data } => Some(BatchItem {
            id: entry.id,
            key: Some((*session, *seq)),
            data: data.clone(),
        }),
        // A registration opens the session globally too: the item carries
        // the session's seq 1 with no value, so every cluster's dedup
        // window starts at the registration, mirroring the local contract.
        Payload::Register { session } => Some(BatchItem {
            id: entry.id,
            key: Some((*session, 1)),
            data: bytes::Bytes::new(),
        }),
        _ => None,
    }
}

/// Helper: builds the node set for a whole C-Raft deployment — `clusters`
/// clusters of `per_cluster` sites each, node ids assigned row-major, the
/// first site of each cluster designated as its initial leader.
///
/// Returns `(nodes, global_bootstrap)`.
pub fn build_deployment(
    clusters: u64,
    per_cluster: u64,
    cfg_for: impl Fn(ClusterId) -> CRaftConfig,
    seed: u64,
) -> (Vec<CRaftNode>, Configuration) {
    assert!(clusters > 0 && per_cluster > 0, "empty deployment");
    let global_bootstrap: Configuration = (0..clusters)
        .map(|c| NodeId(c * per_cluster))
        .collect();
    let root = SimRng::seed_from_u64(seed);
    let mut nodes = Vec::new();
    for c in 0..clusters {
        let members: Configuration = (0..per_cluster)
            .map(|i| NodeId(c * per_cluster + i))
            .collect();
        for i in 0..per_cluster {
            let id = NodeId(c * per_cluster + i);
            nodes.push(CRaftNode::new(
                id,
                members.clone(),
                global_bootstrap.clone(),
                cfg_for(ClusterId(c)),
                root.split_indexed("craft-node", id.as_u64()),
            ));
        }
    }
    (nodes, global_bootstrap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn deployment_builder_shapes() {
        let (nodes, global) = build_deployment(4, 5, CRaftConfig::paper, 1);
        assert_eq!(nodes.len(), 20);
        assert_eq!(global.len(), 4);
        assert!(global.contains(NodeId(0)));
        assert!(global.contains(NodeId(5)));
        assert!(global.contains(NodeId(10)));
        assert!(global.contains(NodeId(15)));
        assert_eq!(nodes[7].cluster(), ClusterId(1));
        assert!(!nodes[0].is_local_leader());
    }

    #[test]
    fn paper_config_values() {
        let c = CRaftConfig::paper(ClusterId(2));
        assert_eq!(c.batch_size, 10);
        assert_eq!(c.local_timing.heartbeat.as_millis(), 100);
        assert_eq!(c.global_timing.heartbeat.as_millis(), 500);
    }

    #[test]
    #[should_panic(expected = "empty deployment")]
    fn empty_deployment_rejected() {
        build_deployment(0, 5, CRaftConfig::paper, 1);
    }

    fn batch_node(batch_size: usize, max_batch_bytes: usize) -> CRaftNode {
        let solo = Configuration::new([NodeId(0)]);
        let mut cfg = CRaftConfig::paper(ClusterId(0));
        cfg.batch_size = batch_size;
        cfg.max_batch_bytes = max_batch_bytes;
        CRaftNode::new(NodeId(0), solo.clone(), solo, cfg, SimRng::seed_from_u64(1))
    }

    fn buf_items(node: &mut CRaftNode, count: u64, data_len: usize) {
        node.batch_buf = (0..count)
            .map(|i| {
                (
                    LogIndex(i + 1),
                    BatchItem {
                        id: EntryId::new(NodeId(0), i),
                        key: None,
                        data: Bytes::from(vec![0u8; data_len]),
                    },
                )
            })
            .collect();
    }

    #[test]
    fn batch_cut_byte_budget_binds_before_count_cap() {
        // Each item encodes to 16 (id) + 4 + 40 (data) = 60 bytes.
        let mut node = batch_node(10, 100);
        buf_items(&mut node, 10, 40);
        // The second item would push 60 -> 120 > 100: cut before it.
        assert_eq!(node.next_batch_cut(), Some(1));
    }

    #[test]
    fn batch_cut_count_cap_without_byte_cap() {
        let mut node = batch_node(10, 0);
        buf_items(&mut node, 12, 40);
        assert_eq!(node.next_batch_cut(), Some(10));
    }

    #[test]
    fn batch_cut_oversized_single_item_ships_alone() {
        let mut node = batch_node(10, 100);
        buf_items(&mut node, 1, 200);
        assert_eq!(node.next_batch_cut(), Some(1));
    }

    #[test]
    fn batch_cut_waits_under_both_caps() {
        let mut node = batch_node(10, 1000);
        buf_items(&mut node, 3, 40);
        assert_eq!(node.next_batch_cut(), None, "partial batch waits for flush");
    }
}
