//! Fast Raft and C-Raft message vocabulary (§IV, §V).

use des::SimTime;
use wire::{
    ClientOutcome, DecodeError, Decoder, Encoder, EntryId, EntryList, LogEntry, LogIndex, Message,
    NodeId, SessionId, Snapshot, Term, Wire,
};

/// Messages exchanged by Fast Raft sites (one consensus level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FastRaftMessage {
    /// Proposer → **all** members: insert `entry` at `index` (§IV-B
    /// "To propose an entry": send to all members in the configuration).
    ProposeAt {
        /// Target log index chosen by the proposer.
        index: LogIndex,
        /// The proposed entry (self-approved on insert).
        entry: LogEntry,
    },
    /// Site → leader: its vote — "Send log\[i\] and commitIndex to leaderId".
    Vote {
        /// The index voted on.
        index: LogIndex,
        /// The entry present at that index in the voter's log.
        entry: LogEntry,
        /// The voter's commit index (the leader resets `nextIndex` from it).
        commit_index: LogIndex,
    },
    /// Leader (or any site) → proposer: proposal outcome / redirect.
    ProposeReply {
        /// The proposal this refers to.
        id: EntryId,
        /// `true` once committed.
        committed: bool,
        /// Current leader, for redirects.
        leader_hint: Option<NodeId>,
    },
    /// Leader → follower: classic-track replication of **leader-approved**
    /// entries, plus heartbeat.
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// Leader id.
        leader: NodeId,
        /// Index just before the replicated range (`nextIndex - 1`). The
        /// leader's belief is backed by the follower's own write-ahead
        /// acknowledgements, so the follower may treat its log as verified
        /// up to here when contiguous.
        prev_index: LogIndex,
        /// Explicitly indexed entries (Fast Raft logs may be sparse).
        /// `Arc`-shared: followers addressed at the same `nextIndex`
        /// receive handles to one allocation.
        entries: EntryList,
        /// Leader's commit index.
        leader_commit: LogIndex,
        /// C-Raft piggyback (§V-B): the cluster leader's **global** commit
        /// index, so cluster members learn which global entries committed.
        /// Zero outside C-Raft's local level.
        global_commit: LogIndex,
        /// ReadIndex round tag: followers echo it in their reply, and a
        /// pending linearizable read only counts acks whose echoed probe is
        /// at least the probe current when the read was registered.
        probe: u64,
    },
    /// Follower → leader: replication ack.
    AppendEntriesReply {
        /// Follower's term.
        term: Term,
        /// Whether entries were accepted.
        success: bool,
        /// Highest index now matching the leader.
        match_index: LogIndex,
        /// Echo of the request's ReadIndex probe.
        probe: u64,
        /// Leader-lease grant accompanying a successful ack: the follower
        /// promises not to vote for a different leader before this instant
        /// **on its own clock** (`ack time + Timing::lease_duration`).
        /// [`SimTime::ZERO`] when the follower is clockless or the ack
        /// failed — no grant. At C-Raft's global level the "followers" are
        /// the other cluster leaders, making this the recursive grant of
        /// the hierarchy.
        lease_until: SimTime,
    },
    /// Gateway → leader: run a linearizable ReadIndex round and answer with
    /// the confirmed commit floor (at C-Raft's global level this is how a
    /// cluster leader serves a global read).
    ClientRead {
        /// The issuing client session.
        session: SessionId,
        /// The request's sequence number.
        seq: u64,
    },
    /// Any site → gateway: the typed outcome of a client request.
    ClientReply {
        /// The session this answers.
        session: SessionId,
        /// The request's sequence number.
        seq: u64,
        /// What happened.
        outcome: ClientOutcome,
    },
    /// Candidate → all: request a vote. Up-to-dateness is judged on
    /// **leader-approved** entries only (§IV-C).
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// The candidate.
        candidate: NodeId,
        /// Index of candidate's last leader-approved entry.
        last_leader_index: LogIndex,
        /// Term of that entry.
        last_leader_term: Term,
    },
    /// Voter → candidate: the vote, carrying the voter's self-approved
    /// entries for the recovery algorithm (§IV-C).
    RequestVoteReply {
        /// Voter's term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
        /// All self-approved entries in the voter's log (empty on refusal).
        self_approved: Vec<(LogIndex, LogEntry)>,
    },
    /// Joining site → members: request to join the configuration (§IV-D).
    JoinRequest {
        /// The joining site.
        node: NodeId,
    },
    /// Member → joining site: redirect or completion notice.
    JoinReply {
        /// `true` once the new configuration including the site committed.
        accepted: bool,
        /// Current leader, for redirects.
        leader_hint: Option<NodeId>,
    },
    /// Departing site → leader: announced leave (§IV-D).
    LeaveRequest {
        /// The departing site.
        node: NodeId,
    },
    /// Leader → laggard site: the site's `nextIndex` fell below the
    /// leader's first retained log index (it was absent past the compaction
    /// horizon, or is a fresh joiner), so the decided prefix is transferred
    /// as a snapshot instead of replayed entry by entry (§IV-D catch-up).
    InstallSnapshot {
        /// Leader's term.
        term: Term,
        /// Leader's id.
        leader: NodeId,
        /// The snapshot covering the compacted prefix.
        snapshot: Snapshot,
    },
    /// Laggard → leader: snapshot transfer outcome.
    InstallSnapshotReply {
        /// The site's term, so a stale leader steps down.
        term: Term,
        /// Highest index the site's log now covers via the snapshot.
        last_index: LogIndex,
    },
}

impl FastRaftMessage {
    /// Short tag for traces and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            FastRaftMessage::ProposeAt { .. } => "propose_at",
            FastRaftMessage::Vote { .. } => "vote",
            FastRaftMessage::ProposeReply { .. } => "propose_reply",
            FastRaftMessage::AppendEntries { .. } => "append_entries",
            FastRaftMessage::AppendEntriesReply { .. } => "append_entries_reply",
            FastRaftMessage::ClientRead { .. } => "client_read",
            FastRaftMessage::ClientReply { .. } => "client_reply",
            FastRaftMessage::RequestVote { .. } => "request_vote",
            FastRaftMessage::RequestVoteReply { .. } => "request_vote_reply",
            FastRaftMessage::JoinRequest { .. } => "join_request",
            FastRaftMessage::JoinReply { .. } => "join_reply",
            FastRaftMessage::LeaveRequest { .. } => "leave_request",
            FastRaftMessage::InstallSnapshot { .. } => "install_snapshot",
            FastRaftMessage::InstallSnapshotReply { .. } => "install_snapshot_reply",
        }
    }

    /// `true` for client-level traffic exempt from the configuration filter.
    pub fn is_client_traffic(&self) -> bool {
        matches!(
            self,
            FastRaftMessage::ProposeReply { .. }
                | FastRaftMessage::ClientRead { .. }
                | FastRaftMessage::ClientReply { .. }
                | FastRaftMessage::JoinRequest { .. }
                | FastRaftMessage::JoinReply { .. }
                | FastRaftMessage::LeaveRequest { .. }
        )
    }
}

impl Wire for FastRaftMessage {
    fn encode(&self, e: &mut Encoder) {
        match self {
            FastRaftMessage::ProposeAt { index, entry } => {
                e.put_u8(0);
                index.encode(e);
                entry.encode(e);
            }
            FastRaftMessage::Vote {
                index,
                entry,
                commit_index,
            } => {
                e.put_u8(1);
                index.encode(e);
                entry.encode(e);
                commit_index.encode(e);
            }
            FastRaftMessage::ProposeReply {
                id,
                committed,
                leader_hint,
            } => {
                e.put_u8(2);
                id.encode(e);
                committed.encode(e);
                leader_hint.encode(e);
            }
            FastRaftMessage::AppendEntries {
                term,
                leader,
                prev_index,
                entries,
                leader_commit,
                global_commit,
                probe,
            } => {
                e.put_u8(3);
                term.encode(e);
                leader.encode(e);
                prev_index.encode(e);
                entries.encode(e);
                leader_commit.encode(e);
                global_commit.encode(e);
                e.put_u64(*probe);
            }
            FastRaftMessage::AppendEntriesReply {
                term,
                success,
                match_index,
                probe,
                lease_until,
            } => {
                e.put_u8(4);
                term.encode(e);
                success.encode(e);
                match_index.encode(e);
                e.put_u64(*probe);
                e.put_u64(lease_until.as_micros());
            }
            FastRaftMessage::ClientRead { session, seq } => {
                e.put_u8(12);
                session.encode(e);
                e.put_u64(*seq);
            }
            FastRaftMessage::ClientReply {
                session,
                seq,
                outcome,
            } => {
                e.put_u8(13);
                session.encode(e);
                e.put_u64(*seq);
                outcome.encode(e);
            }
            FastRaftMessage::RequestVote {
                term,
                candidate,
                last_leader_index,
                last_leader_term,
            } => {
                e.put_u8(5);
                term.encode(e);
                candidate.encode(e);
                last_leader_index.encode(e);
                last_leader_term.encode(e);
            }
            FastRaftMessage::RequestVoteReply {
                term,
                granted,
                self_approved,
            } => {
                e.put_u8(6);
                term.encode(e);
                granted.encode(e);
                self_approved.encode(e);
            }
            FastRaftMessage::JoinRequest { node } => {
                e.put_u8(7);
                node.encode(e);
            }
            FastRaftMessage::JoinReply {
                accepted,
                leader_hint,
            } => {
                e.put_u8(8);
                accepted.encode(e);
                leader_hint.encode(e);
            }
            FastRaftMessage::LeaveRequest { node } => {
                e.put_u8(9);
                node.encode(e);
            }
            FastRaftMessage::InstallSnapshot {
                term,
                leader,
                snapshot,
            } => {
                e.put_u8(10);
                term.encode(e);
                leader.encode(e);
                snapshot.encode(e);
            }
            FastRaftMessage::InstallSnapshotReply { term, last_index } => {
                e.put_u8(11);
                term.encode(e);
                last_index.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => FastRaftMessage::ProposeAt {
                index: LogIndex::decode(d)?,
                entry: LogEntry::decode(d)?,
            },
            1 => FastRaftMessage::Vote {
                index: LogIndex::decode(d)?,
                entry: LogEntry::decode(d)?,
                commit_index: LogIndex::decode(d)?,
            },
            2 => FastRaftMessage::ProposeReply {
                id: EntryId::decode(d)?,
                committed: bool::decode(d)?,
                leader_hint: Option::decode(d)?,
            },
            3 => FastRaftMessage::AppendEntries {
                term: Term::decode(d)?,
                leader: NodeId::decode(d)?,
                prev_index: LogIndex::decode(d)?,
                entries: EntryList::decode(d)?,
                leader_commit: LogIndex::decode(d)?,
                global_commit: LogIndex::decode(d)?,
                probe: d.u64()?,
            },
            4 => FastRaftMessage::AppendEntriesReply {
                term: Term::decode(d)?,
                success: bool::decode(d)?,
                match_index: LogIndex::decode(d)?,
                probe: d.u64()?,
                lease_until: SimTime::from_micros(d.u64()?),
            },
            12 => FastRaftMessage::ClientRead {
                session: SessionId::decode(d)?,
                seq: d.u64()?,
            },
            13 => FastRaftMessage::ClientReply {
                session: SessionId::decode(d)?,
                seq: d.u64()?,
                outcome: ClientOutcome::decode(d)?,
            },
            5 => FastRaftMessage::RequestVote {
                term: Term::decode(d)?,
                candidate: NodeId::decode(d)?,
                last_leader_index: LogIndex::decode(d)?,
                last_leader_term: Term::decode(d)?,
            },
            6 => FastRaftMessage::RequestVoteReply {
                term: Term::decode(d)?,
                granted: bool::decode(d)?,
                self_approved: Vec::decode(d)?,
            },
            7 => FastRaftMessage::JoinRequest {
                node: NodeId::decode(d)?,
            },
            8 => FastRaftMessage::JoinReply {
                accepted: bool::decode(d)?,
                leader_hint: Option::decode(d)?,
            },
            9 => FastRaftMessage::LeaveRequest {
                node: NodeId::decode(d)?,
            },
            10 => FastRaftMessage::InstallSnapshot {
                term: Term::decode(d)?,
                leader: NodeId::decode(d)?,
                snapshot: Snapshot::decode(d)?,
            },
            11 => FastRaftMessage::InstallSnapshotReply {
                term: Term::decode(d)?,
                last_index: LogIndex::decode(d)?,
            },
            tag => {
                return Err(DecodeError::InvalidTag {
                    ty: "FastRaftMessage",
                    tag,
                })
            }
        })
    }

    /// Allocation-free size computation (overrides the encode-and-measure
    /// default: the network layer charges `wire_size` on every send).
    fn encoded_len(&self) -> usize {
        1 + match self {
            FastRaftMessage::ProposeAt { entry, .. } => 8 + entry.encoded_len(),
            FastRaftMessage::Vote { entry, .. } => 8 + entry.encoded_len() + 8,
            FastRaftMessage::ProposeReply { leader_hint, .. } => 16 + 1 + leader_hint.encoded_len(),
            FastRaftMessage::AppendEntries { entries, .. } => {
                8 + 8 + 8 + entries.encoded_len() + 8 + 8 + 8
            }
            FastRaftMessage::AppendEntriesReply { .. } => 8 + 1 + 8 + 8 + 8,
            FastRaftMessage::ClientRead { .. } => 8 + 8,
            FastRaftMessage::ClientReply { outcome, .. } => 8 + 8 + outcome.encoded_len(),
            FastRaftMessage::RequestVote { .. } => 8 + 8 + 8 + 8,
            FastRaftMessage::RequestVoteReply { self_approved, .. } => {
                8 + 1 + self_approved.encoded_len()
            }
            FastRaftMessage::JoinRequest { .. } => 8,
            FastRaftMessage::JoinReply { leader_hint, .. } => 1 + leader_hint.encoded_len(),
            FastRaftMessage::LeaveRequest { .. } => 8,
            FastRaftMessage::InstallSnapshot { snapshot, .. } => 8 + 8 + snapshot.encoded_len(),
            FastRaftMessage::InstallSnapshotReply { .. } => 8 + 8,
        }
    }
}

impl Message for FastRaftMessage {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

/// C-Raft traffic: Fast Raft messages tagged with the consensus level they
/// belong to (§V-B: sites hold state for both levels).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CRaftMessage {
    /// Intra-cluster (local-log) consensus traffic.
    Local(FastRaftMessage),
    /// Inter-cluster (global-log) consensus traffic among cluster leaders.
    Global(FastRaftMessage),
}

impl CRaftMessage {
    /// Short tag for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            CRaftMessage::Local(m) => m.kind(),
            CRaftMessage::Global(m) => m.kind(),
        }
    }

    /// `true` for global-level traffic.
    pub fn is_global(&self) -> bool {
        matches!(self, CRaftMessage::Global(_))
    }
}

impl Wire for CRaftMessage {
    fn encode(&self, e: &mut Encoder) {
        match self {
            CRaftMessage::Local(m) => {
                e.put_u8(0);
                m.encode(e);
            }
            CRaftMessage::Global(m) => {
                e.put_u8(1);
                m.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => CRaftMessage::Local(FastRaftMessage::decode(d)?),
            1 => CRaftMessage::Global(FastRaftMessage::decode(d)?),
            tag => {
                return Err(DecodeError::InvalidTag {
                    ty: "CRaftMessage",
                    tag,
                })
            }
        })
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            CRaftMessage::Local(m) | CRaftMessage::Global(m) => m.encoded_len(),
        }
    }
}

impl Message for CRaftMessage {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wire::Term;

    fn entry() -> LogEntry {
        LogEntry::data(
            Term(2),
            EntryId::new(NodeId(3), 7),
            Bytes::from_static(b"payload"),
        )
    }

    fn roundtrip_fast(m: &FastRaftMessage) {
        let b = m.to_bytes();
        assert_eq!(b.len(), m.wire_size());
        assert_eq!(&FastRaftMessage::from_bytes(&b).unwrap(), m);
    }

    #[test]
    fn all_fast_variants_roundtrip() {
        roundtrip_fast(&FastRaftMessage::ProposeAt {
            index: LogIndex(4),
            entry: entry(),
        });
        roundtrip_fast(&FastRaftMessage::Vote {
            index: LogIndex(4),
            entry: entry(),
            commit_index: LogIndex(3),
        });
        roundtrip_fast(&FastRaftMessage::ProposeReply {
            id: EntryId::new(NodeId(3), 7),
            committed: true,
            leader_hint: None,
        });
        roundtrip_fast(&FastRaftMessage::AppendEntries {
            term: Term(2),
            leader: NodeId(1),
            prev_index: LogIndex(3),
            entries: EntryList::from_vec(vec![(LogIndex(4), entry())]),
            leader_commit: LogIndex(3),
            global_commit: LogIndex(2),
            probe: 9,
        });
        roundtrip_fast(&FastRaftMessage::AppendEntriesReply {
            term: Term(2),
            success: true,
            match_index: LogIndex(4),
            probe: 9,
            lease_until: SimTime::from_millis(7777),
        });
        roundtrip_fast(&FastRaftMessage::ClientRead {
            session: SessionId::client(3),
            seq: 11,
        });
        roundtrip_fast(&FastRaftMessage::ClientReply {
            session: SessionId::client(3),
            seq: 11,
            outcome: ClientOutcome::ReadOk {
                scope: wire::LogScope::Global,
                commit_floor: LogIndex(44),
            },
        });
        roundtrip_fast(&FastRaftMessage::RequestVote {
            term: Term(3),
            candidate: NodeId(2),
            last_leader_index: LogIndex(9),
            last_leader_term: Term(2),
        });
        roundtrip_fast(&FastRaftMessage::RequestVoteReply {
            term: Term(3),
            granted: true,
            self_approved: vec![(LogIndex(5), entry())],
        });
        roundtrip_fast(&FastRaftMessage::JoinRequest { node: NodeId(9) });
        roundtrip_fast(&FastRaftMessage::JoinReply {
            accepted: false,
            leader_hint: Some(NodeId(1)),
        });
        roundtrip_fast(&FastRaftMessage::LeaveRequest { node: NodeId(4) });
        roundtrip_fast(&FastRaftMessage::InstallSnapshot {
            term: Term(3),
            leader: NodeId(1),
            snapshot: Snapshot {
                scope: wire::LogScope::Global,
                last_index: LogIndex(300),
                last_term: Term(3),
                config: wire::Configuration::new([NodeId(1), NodeId(2), NodeId(3)]),
                state: Snapshot::digest_state(99),
                sessions: wire::SessionTable::new(),
            },
        });
        roundtrip_fast(&FastRaftMessage::InstallSnapshotReply {
            term: Term(3),
            last_index: LogIndex(300),
        });
    }

    #[test]
    fn craft_wrapping_roundtrips() {
        for m in [
            CRaftMessage::Local(FastRaftMessage::JoinRequest { node: NodeId(1) }),
            CRaftMessage::Global(FastRaftMessage::ProposeAt {
                index: LogIndex(1),
                entry: entry(),
            }),
        ] {
            let b = m.to_bytes();
            assert_eq!(&CRaftMessage::from_bytes(&b).unwrap(), &m);
        }
        assert!(CRaftMessage::Global(FastRaftMessage::JoinRequest { node: NodeId(1) }).is_global());
    }

    #[test]
    fn client_traffic_classification() {
        assert!(FastRaftMessage::JoinRequest { node: NodeId(1) }.is_client_traffic());
        assert!(!FastRaftMessage::Vote {
            index: LogIndex(1),
            entry: entry(),
            commit_index: LogIndex(0),
        }
        .is_client_traffic());
    }

    #[test]
    fn broadcast_proposal_size_is_linear_in_payload() {
        let small = FastRaftMessage::ProposeAt {
            index: LogIndex(1),
            entry: LogEntry::data(Term(1), EntryId::new(NodeId(1), 0), Bytes::from(vec![0; 16])),
        };
        let big = FastRaftMessage::ProposeAt {
            index: LogIndex(1),
            entry: LogEntry::data(
                Term(1),
                EntryId::new(NodeId(1), 0),
                Bytes::from(vec![0; 1600]),
            ),
        };
        assert_eq!(big.wire_size() - small.wire_size(), 1600 - 16);
    }
}
