//! Plain (single-level) Fast Raft: the engine with immediate inserts.
//!
//! This is the protocol evaluated in the paper's Fig. 3 and Fig. 4: one
//! consensus group, fast-track commits in two message rounds, classic-track
//! fallback, self-announced membership, and silent-leave detection.

use des::SimRng;
use raft::{Role, Timing};
use storage::StableState;
use wire::{
    Actions, ClientRequest, Configuration, ConsensusProtocol, LogIndex, LogScope, NodeId,
    SessionTable, Term, TimerKind,
};

use crate::engine::{FastRaftEngine, TimerProfile};
use crate::gate::ProceedGate;
use crate::message::FastRaftMessage;

/// A Fast Raft site (§IV).
///
/// # Examples
///
/// ```
/// use consensus_core::FastRaftNode;
/// use des::SimRng;
/// use raft::{Role, Timing};
/// use raft::testkit::Lockstep;
/// use wire::{Configuration, NodeId, TimerKind};
///
/// let cfg: Configuration = (0..5).map(NodeId).collect();
/// let nodes = (0..5).map(|i| {
///     FastRaftNode::new(NodeId(i), cfg.clone(), Timing::lan(), SimRng::seed_from_u64(i))
/// });
/// let mut net = Lockstep::new(nodes);
/// net.fire(NodeId(0), TimerKind::Election);
/// net.deliver_all();
/// assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
/// ```
#[derive(Debug)]
pub struct FastRaftNode {
    engine: FastRaftEngine,
    gate: ProceedGate,
}

impl FastRaftNode {
    /// Creates a member node with a bootstrap configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bootstrap` is empty or omits `id`, or on invalid timing.
    pub fn new(id: NodeId, bootstrap: Configuration, timing: Timing, rng: SimRng) -> Self {
        FastRaftNode {
            engine: FastRaftEngine::new(
                id,
                bootstrap,
                LogScope::Global,
                TimerProfile::Base,
                timing,
                rng,
            ),
            gate: ProceedGate,
        }
    }

    /// Creates a node that joins an existing system through `contacts`
    /// (§IV-D): it catches up as a non-voting member, then enters the
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `contacts` is empty or on invalid timing.
    pub fn joining(id: NodeId, contacts: Vec<NodeId>, timing: Timing, rng: SimRng) -> Self {
        FastRaftNode {
            engine: FastRaftEngine::joining(
                id,
                contacts,
                LogScope::Global,
                TimerProfile::Base,
                timing,
                rng,
            ),
            gate: ProceedGate,
        }
    }

    /// Rebuilds a node from stable storage after a crash: snapshot (if any)
    /// plus the retained log suffix.
    pub fn recover(
        id: NodeId,
        stable: &StableState,
        bootstrap: Configuration,
        timing: Timing,
        rng: SimRng,
    ) -> Self {
        FastRaftNode {
            engine: FastRaftEngine::recover(
                id,
                stable.global.current_term,
                stable.global.voted_for,
                stable.global.log.clone(),
                stable.global.snapshot.clone(),
                bootstrap,
                LogScope::Global,
                TimerProfile::Base,
                timing,
                rng,
                stable.global.proposal_seq_floor,
            ),
            gate: ProceedGate,
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.engine.role()
    }

    /// Current term.
    pub fn current_term(&self) -> Term {
        self.engine.current_term()
    }

    /// Highest committed index.
    pub fn commit_index(&self) -> LogIndex {
        self.engine.commit_index()
    }

    /// Highest index applied to the state machine (trails the commit index
    /// only under `Timing::pipelined_apply`, between commit and drain).
    pub fn applied_index(&self) -> LogIndex {
        self.engine.applied_index()
    }

    /// The replicated log.
    pub fn log(&self) -> &wire::SparseLog {
        self.engine.log()
    }

    /// The latest snapshot covering the compacted prefix, if any.
    pub fn snapshot(&self) -> Option<&wire::Snapshot> {
        self.engine.snapshot()
    }

    /// Running digest of the committed sequence (the simulated state
    /// machine's state).
    pub fn state_digest(&self) -> u64 {
        self.engine.state_digest()
    }

    /// The configuration currently obeyed.
    pub fn config(&self) -> &Configuration {
        self.engine.config()
    }

    /// The believed leader.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.engine.leader_hint()
    }

    /// Highest leader-approved index.
    pub fn last_leader_index(&self) -> LogIndex {
        self.engine.last_leader_index()
    }

    /// Proposals issued here and not yet known committed.
    pub fn pending_proposals(&self) -> usize {
        self.engine.pending_proposals()
    }

    /// The per-session exactly-once dedup table (applied state).
    pub fn sessions(&self) -> &SessionTable {
        self.engine.sessions()
    }

    /// `true` while still negotiating membership.
    pub fn is_joining(&self) -> bool {
        self.engine.is_joining()
    }

    /// Announces departure from the system (§IV-D).
    pub fn request_leave(&mut self, out: &mut Actions<FastRaftMessage>) {
        self.engine.request_leave(out);
    }
}

impl ConsensusProtocol for FastRaftNode {
    type Message = FastRaftMessage;

    fn id(&self) -> NodeId {
        self.engine.id()
    }

    fn set_local_clock(&mut self, now: des::SimTime) {
        self.engine.set_local_clock(now);
    }

    fn on_message(&mut self, from: NodeId, msg: FastRaftMessage, out: &mut Actions<FastRaftMessage>) {
        self.engine.on_message(from, msg, &mut self.gate, out);
    }

    fn on_timer(&mut self, kind: TimerKind, out: &mut Actions<FastRaftMessage>) {
        if let Some(base) = TimerProfile::Base.unmap(kind) {
            self.engine.on_timer(base, &mut self.gate, out);
        }
    }

    fn on_client_request(&mut self, req: ClientRequest, out: &mut Actions<FastRaftMessage>) {
        self.engine.on_client_request(req, &mut self.gate, out);
    }

    fn bootstrap(&mut self, out: &mut Actions<FastRaftMessage>) {
        self.engine.bootstrap(out);
    }

    fn pending_applies(&self) -> u64 {
        self.engine.pending_applies()
    }

    fn drain_applies(&mut self, out: &mut Actions<FastRaftMessage>) {
        self.engine.drain_applies(out);
    }
}
