//! Protocol timing parameters.
//!
//! Defaults follow the paper's evaluation (§VI): 100 ms leader heartbeat for
//! intra-cluster consensus, 500 ms for inter-cluster consensus, member
//! timeout of five missed heartbeat responses. Values the paper leaves
//! unspecified (election timeout, proposal retry) get conservative defaults
//! that keep elections rare at ≤10 % message loss.

use des::{SimDuration, SimRng};

/// Timing knobs shared by classic Raft, Fast Raft, and each C-Raft level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Leader heartbeat / AppendEntries dispatch period (paper: 100 ms
    /// intra-cluster, 500 ms inter-cluster).
    pub heartbeat: SimDuration,
    /// Period of Fast Raft's leader decision loop ("periodically run by the
    /// leader", §IV-B). The paper does not fix it; we default to half the
    /// heartbeat, which reproduces the reported 2× latency gap.
    pub decision_tick: SimDuration,
    /// Minimum election timeout. Must exceed `heartbeat` by enough margin
    /// that a few lost heartbeats do not trigger spurious elections.
    pub election_min: SimDuration,
    /// Maximum election timeout (timeouts are drawn uniformly from
    /// `[election_min, election_max]`, §III-A).
    pub election_max: SimDuration,
    /// Proposer-side retry period: resend an uncommitted proposal (§IV-B).
    pub proposal_timeout: SimDuration,
    /// Joining site's join-request retry period (§IV-D).
    pub join_timeout: SimDuration,
    /// Missed AppendEntries responses before the leader declares a silent
    /// leave (paper fig. 4 uses five).
    pub member_timeout_beats: u32,
    /// Decision ticks without progress before the leader fills a blocked
    /// log hole with a no-op proposal (liveness guard; see module docs of
    /// `consensus-core::fastraft`).
    pub hole_fill_ticks: u32,
    /// Maximum entries carried by one AppendEntries message.
    pub max_entries_per_append: usize,
    /// Maximum encoded payload bytes carried by one AppendEntries message.
    /// Models a per-dispatch link budget: wide-area bandwidth is bounded by
    /// bytes, not entry count. A single over-sized entry still ships alone
    /// (see [`wire::AppendBudget`]), so replication always makes progress.
    pub max_bytes_per_append: usize,
    /// Snapshot/compaction threshold: once the committed-but-retained prefix
    /// of a log exceeds this many entries, the site compacts it into a
    /// [`wire::Snapshot`] and truncates the prefix, bounding per-site log
    /// residency. Followers whose `nextIndex` falls below a leader's first
    /// retained index catch up by snapshot transfer instead of log replay.
    /// `0` disables compaction (the pre-snapshot unbounded behavior).
    pub snapshot_threshold: u64,
    /// Session expiry TTL in **committed log indices** (the deterministic
    /// clock all replicas share): a session whose last applied activity
    /// lies more than this many commits below the commit floor is evicted
    /// from the `wire::SessionTable`, its eviction folded into the commit
    /// digest, and its stale retries refused with the **terminal**
    /// `wire::ClientOutcome::SessionExpired` instead of `Duplicate` (the
    /// client must open a fresh session). Bounds the table by *live*
    /// sessions instead of every session ever seen.
    /// `0` (the default) disables expiry — exactly-once dedup state is
    /// then retained forever, the pre-expiry behavior.
    ///
    /// Caveat: a stale retry is only *detectable* for `seq > 1`; an expired
    /// session retrying its very first write re-applies it (see
    /// `wire::SessionTable::is_expired_retry` for the full statement of
    /// the trade).
    pub session_ttl: u64,
    /// Leader-lease window: a follower that acks an AppendEntries at local
    /// time `T` promises not to vote for a *different* leader before
    /// `T + lease_duration` on its own clock. A leader holding such grants
    /// from a quorum (measured with the [`Timing::max_clock_skew`] margin
    /// subtracted) answers `Consistency::Linearizable` reads locally with
    /// **zero messages**; outside the window, reads fall back to the
    /// ReadIndex quorum round. `0` disables leases (every linearizable read
    /// pays the ReadIndex round — the pre-lease behavior). Leases are also
    /// inert on nodes whose embedding never stamps a local clock (see
    /// `wire::ConsensusProtocol::set_local_clock`), so purely event-driven
    /// tests are unaffected by the default. See `docs/CONSISTENCY.md`.
    pub lease_duration: SimDuration,
    /// Modeled worst-case clock skew between any two sites. The lease
    /// validity check subtracts it from every grant (a granter's clock may
    /// run up to this much behind the leader's), and a grant whose window
    /// proves the follower's clock *ahead* by more than this bound is
    /// rejected at receipt — beyond-bound skew degrades to the ReadIndex
    /// fallback instead of an unsafe lease. A fresh leader also waits
    /// `lease_duration + max_clock_skew` on its own clock before serving
    /// lease reads, so a deposed predecessor's lease can never overlap its
    /// writes.
    pub max_clock_skew: SimDuration,
    /// Modeled latency of one fsync boundary (one storage-level persist
    /// batch). With group commit, every protocol step that persisted
    /// anything delays its *outgoing messages* by this much — one boundary
    /// per step, however many commands the step emitted; the unbatched twin
    /// pays it once per command. `ZERO` (the default) keeps every existing
    /// trace byte-identical, so only latency-on runs observe the batching
    /// win. Must stay well below `election_min` ([`Timing::validate`]
    /// rejects `disk_fsync_latency >= election_min`): a stalled persist
    /// delays heartbeats, and a persist as slow as the election floor would
    /// make a healthy-but-syncing leader indistinguishable from a dead one.
    /// The lease window from PR 7 is *unaffected* by fsync latency — grants
    /// are stamped off acked heartbeats, which are themselves delayed, so
    /// the lease hold a follower promises still covers the leader's (later)
    /// read; the `lease_duration + max_clock_skew <= election_min` bound
    /// already absorbs the shift. But a latency near the lease window would
    /// starve lease renewal for the same reason it starves heartbeats —
    /// keep it an order of magnitude below both.
    pub disk_fsync_latency: SimDuration,
    /// When `true`, state-machine apply is decoupled from the protocol step:
    /// commit advancement only *queues* the newly committed range, and the
    /// embedding drains the queue as a separate stage (after the step's
    /// messages are released), so a leader can assemble the next
    /// AppendEntries while the previous commit range applies. Apply *order*
    /// is unchanged — same entries, same digests, same session-table
    /// transitions — only its scheduling moves. `false` (the default)
    /// applies inline at the commit point, byte-identical to the
    /// pre-pipelining traces.
    pub pipelined_apply: bool,
}

impl Timing {
    /// The paper's intra-cluster (single-region) configuration.
    pub fn lan() -> Self {
        Timing {
            heartbeat: SimDuration::from_millis(100),
            decision_tick: SimDuration::from_millis(50),
            election_min: SimDuration::from_millis(500),
            election_max: SimDuration::from_millis(1000),
            proposal_timeout: SimDuration::from_millis(200),
            join_timeout: SimDuration::from_millis(1000),
            member_timeout_beats: 5,
            hole_fill_ticks: 8,
            max_entries_per_append: 128,
            max_bytes_per_append: 64 * 1024,
            snapshot_threshold: 1024,
            session_ttl: 0,
            lease_duration: SimDuration::from_millis(300),
            max_clock_skew: SimDuration::from_millis(50),
            disk_fsync_latency: SimDuration::ZERO,
            pipelined_apply: false,
        }
    }

    /// The paper's inter-cluster (global) configuration: 500 ms heartbeat,
    /// election timeouts scaled accordingly.
    pub fn wan() -> Self {
        Timing {
            heartbeat: SimDuration::from_millis(500),
            decision_tick: SimDuration::from_millis(250),
            election_min: SimDuration::from_millis(2500),
            election_max: SimDuration::from_millis(5000),
            proposal_timeout: SimDuration::from_millis(1500),
            join_timeout: SimDuration::from_millis(5000),
            member_timeout_beats: 5,
            hole_fill_ticks: 8,
            max_entries_per_append: 128,
            max_bytes_per_append: 64 * 1024,
            snapshot_threshold: 1024,
            session_ttl: 0,
            lease_duration: SimDuration::from_millis(1500),
            max_clock_skew: SimDuration::from_millis(250),
            disk_fsync_latency: SimDuration::ZERO,
            pipelined_apply: false,
        }
    }

    /// Draws a randomized election timeout from `[election_min,
    /// election_max]`.
    pub fn election_timeout(&self, rng: &mut SimRng) -> SimDuration {
        rng.duration_between(self.election_min, self.election_max)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot sustain a stable leader (election
    /// window shorter than two heartbeats, zero timeouts, ...).
    pub fn validate(&self) {
        assert!(!self.heartbeat.is_zero(), "heartbeat must be positive");
        assert!(
            !self.decision_tick.is_zero(),
            "decision tick must be positive"
        );
        assert!(
            self.election_min >= self.heartbeat * 2,
            "election_min {} must be at least two heartbeats {}",
            self.election_min,
            self.heartbeat
        );
        assert!(
            self.election_max >= self.election_min,
            "election_max below election_min"
        );
        assert!(self.member_timeout_beats > 0, "member timeout of zero beats");
        assert!(
            self.max_entries_per_append > 0,
            "append batch size must be positive"
        );
        assert!(
            self.max_bytes_per_append > 0,
            "append byte budget must be positive"
        );
        if !self.lease_duration.is_zero() {
            // A follower's vote-hold must expire no later than its own
            // election timer can fire after the *last* heartbeat it acked;
            // otherwise the hold could outlive the follower's willingness to
            // elect anyone, or — worse — a lease could be considered live
            // past the point a granter legitimately votes. Keeping
            // lease + skew inside the minimum election timeout preserves
            // both liveness and the safety margin.
            assert!(
                self.lease_duration + self.max_clock_skew <= self.election_min,
                "lease_duration {} + max_clock_skew {} must not exceed election_min {}",
                self.lease_duration,
                self.max_clock_skew,
                self.election_min
            );
        }
        assert!(
            self.disk_fsync_latency < self.election_min,
            "disk_fsync_latency {} must stay below election_min {}: a stalled \
             persist delays heartbeats and must not look like a dead peer",
            self.disk_fsync_latency,
            self.election_min
        );
    }

    /// The replication budget for one AppendEntries dispatch.
    pub fn append_budget(&self) -> wire::AppendBudget {
        wire::AppendBudget::new(self.max_entries_per_append, self.max_bytes_per_append)
    }
}

impl Default for Timing {
    /// Defaults to the paper's intra-cluster configuration.
    fn default() -> Self {
        Timing::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        Timing::lan().validate();
        Timing::wan().validate();
    }

    #[test]
    fn paper_values() {
        assert_eq!(Timing::lan().heartbeat, SimDuration::from_millis(100));
        assert_eq!(Timing::wan().heartbeat, SimDuration::from_millis(500));
        assert_eq!(Timing::lan().member_timeout_beats, 5);
    }

    #[test]
    fn election_timeout_in_range() {
        let t = Timing::lan();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = t.election_timeout(&mut rng);
            assert!(d >= t.election_min && d <= t.election_max);
        }
    }

    #[test]
    fn lease_window_fits_inside_election_min() {
        for t in [Timing::lan(), Timing::wan()] {
            assert!(t.lease_duration + t.max_clock_skew <= t.election_min);
            assert_eq!(t.lease_duration, t.heartbeat * 3);
            assert_eq!(t.max_clock_skew, t.heartbeat / 2);
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed election_min")]
    fn validate_rejects_oversized_lease() {
        let mut t = Timing::lan();
        t.lease_duration = t.election_min;
        t.max_clock_skew = SimDuration::from_millis(1);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "two heartbeats")]
    fn validate_rejects_tight_election_window() {
        let mut t = Timing::lan();
        t.election_min = t.heartbeat;
        t.validate();
    }

    #[test]
    fn presets_model_no_fsync_latency_and_inline_apply() {
        for t in [Timing::lan(), Timing::wan()] {
            assert!(t.disk_fsync_latency.is_zero());
            assert!(!t.pipelined_apply);
        }
    }

    #[test]
    fn validate_accepts_modest_fsync_latency() {
        let mut t = Timing::lan();
        t.disk_fsync_latency = SimDuration::from_millis(5);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "must stay below election_min")]
    fn validate_rejects_fsync_latency_at_election_floor() {
        let mut t = Timing::lan();
        t.disk_fsync_latency = t.election_min;
        t.validate();
    }
}
