//! # `raft` — classic Raft, the paper's baseline
//!
//! A complete sans-IO implementation of classic Raft as summarized in §III-A
//! of the paper: terms, leader election with randomized timeouts, heartbeat
//! replication, the commit rule, proposer redirection with retry, and
//! administrator-driven single-site membership changes.
//!
//! [`RaftNode`] implements [`wire::ConsensusProtocol`]; the `harness` crate
//! runs it over the simulated network, and [`testkit::Lockstep`] drives it
//! synchronously in tests.
//!
//! ## Timing model
//!
//! Matching the paper's evaluation: AppendEntries dispatch is gated on the
//! leader's heartbeat tick (100 ms in §VI), commit advancement is
//! event-driven on acknowledgements, and proposers are notified immediately.
//!
//! # Examples
//!
//! ```
//! use des::SimRng;
//! use raft::{RaftNode, Role, Timing};
//! use raft::testkit::Lockstep;
//! use wire::{Configuration, ConsensusProtocol, NodeId, TimerKind};
//!
//! let cfg: Configuration = (0..3).map(NodeId).collect();
//! let nodes = (0..3).map(|i| {
//!     RaftNode::new(NodeId(i), cfg.clone(), Timing::lan(), SimRng::seed_from_u64(i))
//! });
//! let mut net = Lockstep::new(nodes);
//! net.fire(NodeId(0), TimerKind::Election);
//! net.deliver_all();
//! assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod message;
mod node;
pub mod testkit;
mod timing;

pub use message::RaftMessage;
pub use node::{NotLeader, RaftNode, Role};
pub use timing::Timing;
