//! A deterministic lockstep driver for protocol state machines.
//!
//! Unit and integration tests (for classic Raft, Fast Raft, and C-Raft)
//! drive nodes **synchronously**: messages queue in FIFO order and are
//! delivered on demand; timers never fire on their own — tests fire them by
//! `(node, kind)` explicitly. This makes protocol scenarios (elections, log
//! conflicts, recovery) fully scripted and reproducible without a clock.
//!
//! The full time-driven simulation lives in the `harness` crate; this module
//! is intentionally minimal.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use storage::SimDisk;
use wire::{
    Actions, ClientRequest, Commit, Consistency, ConsensusProtocol, EntryId, NodeId, Observation,
    SessionId, TimerCmd, TimerKind,
};

/// A lockstep network of protocol nodes.
pub struct Lockstep<P: ConsensusProtocol> {
    nodes: BTreeMap<NodeId, P>,
    queue: VecDeque<(NodeId, NodeId, P::Message)>,
    armed: BTreeSet<(NodeId, TimerKind)>,
    commits: BTreeMap<NodeId, Vec<Commit>>,
    observations: Vec<(NodeId, Observation)>,
    disk: SimDisk,
    /// Next client seq per node-derived session (survives node restarts,
    /// like a real client outliving a gateway crash).
    client_seq: BTreeMap<NodeId, u64>,
    /// Nodes currently crashed/stopped: their messages and timers are
    /// discarded.
    down: BTreeSet<NodeId>,
    /// Optional link filter: messages failing the predicate are dropped.
    link_ok: Box<dyn Fn(NodeId, NodeId) -> bool>,
    /// Maps a node to its local-consensus domain (cluster). Local-scope
    /// safety is judged within a domain; Global scope is system-wide.
    domain_of: Box<dyn Fn(NodeId) -> u64>,
}

impl<P: ConsensusProtocol> Lockstep<P> {
    /// Creates a lockstep network over the given nodes and bootstraps each.
    pub fn new(nodes: impl IntoIterator<Item = P>) -> Self {
        let mut net = Lockstep {
            nodes: nodes.into_iter().map(|n| (n.id(), n)).collect(),
            queue: VecDeque::new(),
            armed: BTreeSet::new(),
            commits: BTreeMap::new(),
            observations: Vec::new(),
            disk: SimDisk::new(),
            client_seq: BTreeMap::new(),
            down: BTreeSet::new(),
            link_ok: Box::new(|_, _| true),
            domain_of: Box::new(|_| 0),
        };
        let ids: Vec<NodeId> = net.nodes.keys().copied().collect();
        for id in ids {
            net.with_node(id, |node, out| node.bootstrap(out));
        }
        net
    }

    /// Replaces the link filter; return `false` to drop `from → to` traffic.
    pub fn set_link_filter(&mut self, f: impl Fn(NodeId, NodeId) -> bool + 'static) {
        self.link_ok = Box::new(f);
    }

    /// Declares which local-consensus domain (cluster) each node belongs
    /// to; [`Lockstep::assert_safety`] compares Local-scope commits only
    /// within a domain. Hierarchical deployments (C-Raft) need this.
    pub fn set_safety_domains(&mut self, f: impl Fn(NodeId) -> u64 + 'static) {
        self.domain_of = Box::new(f);
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn node(&self, id: NodeId) -> &P {
        self.nodes.get(&id).expect("unknown node")
    }

    /// Mutable access to a node (for assertions needing `&mut`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        self.nodes.get_mut(&id).expect("unknown node")
    }

    /// All node ids, ascending.
    pub fn ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// The stable-storage farm backing this network.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Runs `f` against a node, then routes the produced actions.
    pub fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Actions<P::Message>)) {
        if self.down.contains(&id) {
            return;
        }
        let mut out = Actions::new();
        {
            let node = self.nodes.get_mut(&id).expect("unknown node");
            f(node, &mut out);
        }
        self.route(id, out);
    }

    fn route(&mut self, from: NodeId, out: Actions<P::Message>) {
        // Write-ahead: persistence first.
        self.disk.apply(from, out.persists.iter());
        for (to, msg) in out.sends {
            self.queue.push_back((from, to, msg));
        }
        for cmd in out.timers {
            match cmd {
                TimerCmd::Set { kind, .. } => {
                    self.armed.insert((from, kind));
                }
                TimerCmd::Cancel { kind } => {
                    self.armed.remove(&(from, kind));
                }
            }
        }
        for c in out.commits {
            self.commits.entry(from).or_default().push(c);
        }
        for o in out.observations {
            self.observations.push((from, o));
        }
    }

    /// Fires an armed timer on a node. Returns `true` if it was armed.
    pub fn fire(&mut self, id: NodeId, kind: TimerKind) -> bool {
        if !self.armed.remove(&(id, kind)) || self.down.contains(&id) {
            return false;
        }
        self.with_node(id, |n, out| n.on_timer(kind, out));
        true
    }

    /// `true` if the timer is armed.
    pub fn is_armed(&self, id: NodeId, kind: TimerKind) -> bool {
        self.armed.contains(&(id, kind))
    }

    /// Delivers one queued message, if any. Returns `false` when idle.
    pub fn deliver_one(&mut self) -> bool {
        while let Some((from, to, msg)) = self.queue.pop_front() {
            if self.down.contains(&to) || !(self.link_ok)(from, to) {
                continue;
            }
            if !self.nodes.contains_key(&to) {
                continue;
            }
            self.with_node(to, |n, out| n.on_message(from, msg, out));
            return true;
        }
        false
    }

    /// Delivers messages until the queue drains.
    ///
    /// # Panics
    ///
    /// Panics after 1,000,000 deliveries (livelock guard).
    pub fn deliver_all(&mut self) {
        let mut n = 0u64;
        while self.deliver_one() {
            n += 1;
            assert!(n < 1_000_000, "lockstep livelock: messages never drain");
        }
    }

    /// Submits a session write at `id` (session = the node's id, seq
    /// auto-incremented) and routes the effects. Returns the `(session,
    /// seq)` key the eventual [`Observation::ClientResponse`] will carry.
    pub fn propose(&mut self, id: NodeId, data: &[u8]) -> (SessionId, u64) {
        let seq = {
            let c = self.client_seq.entry(id).or_insert(0);
            *c += 1;
            *c
        };
        let session = SessionId::client(id.as_u64());
        self.client_request(
            id,
            ClientRequest::write(session, seq, bytes::Bytes::copy_from_slice(data)),
        );
        (session, seq)
    }

    /// Submits a read at `id` with the given consistency level. Returns the
    /// request's `(session, seq)` key.
    pub fn read(&mut self, id: NodeId, consistency: Consistency) -> (SessionId, u64) {
        let seq = {
            let c = self.client_seq.entry(id).or_insert(0);
            *c += 1;
            *c
        };
        let session = SessionId::client(id.as_u64());
        self.client_request(id, ClientRequest::read(session, seq, consistency));
        (session, seq)
    }

    /// Submits an arbitrary client request at `id` (e.g. a deliberate retry
    /// of an earlier `(session, seq)`) and routes the effects.
    pub fn client_request(&mut self, id: NodeId, req: ClientRequest) {
        self.with_node(id, |node, out| node.on_client_request(req, out));
    }

    /// The typed responses observed at `id` for `(session, seq)`, in order.
    pub fn responses_for(
        &self,
        id: NodeId,
        session: SessionId,
        seq: u64,
    ) -> Vec<wire::ClientOutcome> {
        self.observations
            .iter()
            .filter_map(|(n, o)| match o {
                Observation::ClientResponse {
                    session: s,
                    seq: q,
                    outcome,
                } if *n == id && *s == session && *q == seq => Some(outcome.clone()),
                _ => None,
            })
            .collect()
    }

    /// All `SessionApplied` observations: `(node, scope, session, seq,
    /// index)` — the raw material for exactly-once assertions.
    pub fn session_applies(
        &self,
    ) -> Vec<(NodeId, wire::LogScope, SessionId, u64, wire::LogIndex)> {
        self.observations
            .iter()
            .filter_map(|(n, o)| match o {
                Observation::SessionApplied {
                    scope,
                    session,
                    seq,
                    index,
                } => Some((*n, *scope, *session, *seq, *index)),
                _ => None,
            })
            .collect()
    }

    /// Asserts exactly-once application: for every `(scope-domain, session,
    /// seq)`, all [`Observation::SessionApplied`] emissions across all
    /// nodes name the **same** log index — a retried seq is never applied
    /// twice, at distinct indices, anywhere.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic when a seq applied at two indices.
    pub fn assert_exactly_once(&self) {
        use std::collections::HashMap;
        let mut applied: HashMap<(u64, wire::LogScope, SessionId, u64), wire::LogIndex> =
            HashMap::new();
        for (node, scope, session, seq, index) in self.session_applies() {
            let domain = match scope {
                wire::LogScope::Local => (self.domain_of)(node),
                wire::LogScope::Global => u64::MAX,
            };
            match applied.entry((domain, scope, session, seq)) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(index);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    assert_eq!(
                        *o.get(),
                        index,
                        "EXACTLY-ONCE VIOLATION: {session}:{seq} applied at both {} and {} \
                         ({scope:?}, observed at {node})",
                        o.get(),
                        index,
                    );
                }
            }
        }
    }

    /// Crashes a node: pending messages to it drop, timers disarm. The
    /// node object is retained for inspection but receives nothing.
    pub fn crash(&mut self, id: NodeId) {
        self.down.insert(id);
        self.armed.retain(|(n, _)| *n != id);
    }

    /// Replaces a crashed node with a recovered instance and bootstraps it.
    pub fn restart(&mut self, node: P) {
        let id = node.id();
        self.down.remove(&id);
        self.nodes.insert(id, node);
        self.with_node(id, |n, out| n.bootstrap(out));
    }

    /// Commits observed at a node, in order.
    pub fn commits(&self, id: NodeId) -> &[Commit] {
        self.commits.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All observations so far, in emission order.
    pub fn observations(&self) -> &[(NodeId, Observation)] {
        &self.observations
    }

    /// Convenience: the set of nodes that believe they currently lead,
    /// judged by a caller-supplied predicate.
    pub fn leaders_by(&self, is_leader: impl Fn(&P) -> bool) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(id, n)| !self.down.contains(id) && is_leader(n))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Asserts the safety property (Definition 2.1): no two nodes committed
    /// different entries at the same index of the same log scope.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if safety is violated.
    pub fn assert_safety(&self) {
        use std::collections::HashMap;
        let mut chosen: HashMap<(u64, wire::LogScope, wire::LogIndex), (NodeId, EntryId)> =
            HashMap::new();
        for (&node, commits) in &self.commits {
            for c in commits {
                let domain = match c.scope {
                    wire::LogScope::Local => (self.domain_of)(node),
                    wire::LogScope::Global => u64::MAX,
                };
                match chosen.entry((domain, c.scope, c.index)) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert((node, c.entry.id));
                    }
                    std::collections::hash_map::Entry::Occupied(o) => {
                        let (first_node, first_id) = *o.get();
                        assert_eq!(
                            first_id, c.entry.id,
                            "SAFETY VIOLATION at {:?} {}: {} committed {} but {} committed {}",
                            c.scope, c.index, first_node, first_id, node, c.entry.id
                        );
                    }
                }
            }
        }
    }
}
