//! The classic Raft node (§III-A), sans-IO.
//!
//! Implements leader election, log replication, commitment, proposer
//! redirection/retry, and administrator-driven membership change — the
//! baseline the paper compares Fast Raft and C-Raft against.
//!
//! ## Event timing (matches the paper's evaluation setup)
//!
//! - AppendEntries dispatch is **heartbeat-gated**: the leader sends entries
//!   and heartbeats only on its periodic [`TimerKind::Heartbeat`] tick, as in
//!   the paper's "Periodically run by the leader" pseudocode.
//! - Commit-index advancement is **event-driven** on acknowledgement receipt
//!   ("When the leader receives AppendEntries message response"), and
//!   proposers are notified immediately on commit.
//!
//! With the paper's closed-loop proposers this yields a commit latency of
//! roughly one heartbeat period — the ~100 ms classic-Raft baseline of
//! Fig. 3.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use bytes::Bytes;
use des::{SimRng, SimTime};
use storage::StableState;
use wire::{
    fold_commit_digest, fold_session_digest, session_state_current, Actions, ClientOp,
    ClientOutcome, ClientRequest,
    Configuration, Consistency, ConsensusProtocol, EntryId, EntryList, LeaseState, LogEntry,
    LogIndex, LogScope, NodeId, Observation, Payload, PersistCmd, ReadIndexQueue, SessionApply,
    SessionId, SessionTable, Snapshot, SparseLog, Term, TimerKind, VoteHold, MAX_INSERT_WINDOW,
};

use crate::{RaftMessage, Timing};

/// Proposal-sequence numbers are reserved in stable storage in blocks of
/// this size (one write-ahead command per block, not per proposal). A crash
/// discards at most one partial block of unused ids.
const SEQ_RESERVE_BLOCK: u64 = 64;

/// The role a site currently plays (§III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Passive replica; votes in elections.
    Follower,
    /// Election in progress, requesting votes.
    Candidate,
    /// The unique coordinator of the current term.
    Leader,
}

/// Error returned by leader-only administrative operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotLeader {
    /// The most recently observed leader, if any.
    pub leader_hint: Option<NodeId>,
}

impl std::fmt::Display for NotLeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not the leader (hint: {:?})", self.leader_hint)
    }
}

impl std::error::Error for NotLeader {}

/// A linearizable read already admitted at a commit floor the state machine
/// has not caught up to yet (pipelined apply only): the floor is safe — it
/// was captured under lease or ReadIndex confirmation — but answering before
/// the apply queue reaches it would let the client observe state older than
/// its admission point.
#[derive(Clone, Debug)]
struct PendingReadAnswer {
    reply_to: NodeId,
    session: SessionId,
    seq: u64,
    floor: LogIndex,
}

/// A session-tagged client write traveling through the gateway's retry
/// machinery until its commit is observed.
#[derive(Clone, Debug)]
struct PendingWrite {
    session: SessionId,
    seq: u64,
    data: Bytes,
    /// `true` for an explicit session registration ([`ClientOp::Register`]):
    /// leader-only (the `Propose` wire message carries no op kind), so a
    /// non-leader routing answers with a redirect instead of forwarding.
    register: bool,
}

/// A classic Raft site.
#[derive(Debug)]
pub struct RaftNode {
    id: NodeId,
    timing: Timing,
    rng: SimRng,

    // ---- persistent state (mirrored to stable storage via PersistCmd) ----
    current_term: Term,
    voted_for: Option<NodeId>,
    log: SparseLog,
    /// Latest snapshot covering the compacted log prefix, served to
    /// followers whose `nextIndex` fell below `log.first_index()`.
    snapshot: Option<Snapshot>,

    // ---- volatile state ----
    commit_index: LogIndex,
    /// Highest index applied to the state machine. Trails `commit_index`
    /// only under [`Timing::pipelined_apply`], between a commit advancement
    /// and the embedding's drain stage; equal to it at every step boundary
    /// otherwise.
    applied_index: LogIndex,
    /// Linearizable reads admitted at a floor above `applied_index`,
    /// answered when the apply queue catches up (pipelined apply only).
    reads_awaiting_apply: Vec<PendingReadAnswer>,
    /// Running digest of the committed sequence (the simulated state
    /// machine); captured into snapshots as the state image.
    state_digest: u64,
    role: Role,
    leader_hint: Option<NodeId>,
    /// Last configuration *inserted* into the log (§III-A).
    config: Configuration,
    /// Index of that configuration entry (ZERO for the bootstrap config).
    config_index: LogIndex,
    /// Votes received while candidate.
    votes: BTreeSet<NodeId>,

    // ---- leader volatile state ----
    next_index: BTreeMap<NodeId, LogIndex>,
    match_index: BTreeMap<NodeId, LogIndex>,
    /// Catch-up (non-voting) members being prepared to join.
    learners: BTreeSet<NodeId>,

    // ---- applied client state (deterministic across replicas) ----
    /// Per-session exactly-once dedup table; updated while applying
    /// committed `Payload::Write` entries and carried inside snapshots.
    sessions: SessionTable,

    // ---- gateway (client-facing) state ----
    next_seq: u64,
    /// One past the highest sequence number covered by a persisted
    /// [`PersistCmd::ReserveProposalSeqs`]; `next_seq` never reaches it
    /// without first extending the reservation, so recovery restarts the
    /// counter above every id this site may ever have sent.
    reserved_seqs: u64,
    /// In-flight session writes submitted at this node, by proposal id.
    pending: BTreeMap<EntryId, PendingWrite>,
    /// `(session, seq)` → proposal id for in-flight writes (client retry
    /// idempotence at the gateway).
    client_writes: HashMap<(SessionId, u64), EntryId>,
    /// In-flight linearizable reads submitted at this node.
    client_reads: BTreeSet<(SessionId, u64)>,

    // ---- leader read path (ReadIndex; shared machinery in wire::read) ----
    reads: ReadIndexQueue,

    // ---- leader lease (quorum-free reads; shared machinery in wire::lease) ----
    /// This node's local clock, stamped by the embedding before each event
    /// via [`ConsensusProtocol::set_local_clock`]. Stays [`SimTime::ZERO`]
    /// (clockless) in purely event-driven embeddings, which keeps every
    /// lease path inert.
    local_now: SimTime,
    /// Leader-side grant collection (valid ⇒ linearizable reads served
    /// locally with zero messages).
    lease: LeaseState,
    /// Follower-side half of the promise: refuse rival candidates while a
    /// grant this node emitted is still live on its own clock.
    vote_hold: VoteHold,

    // ---- leader bookkeeping ----
    /// Where each known proposal id sits in our log (dedup + notification).
    id_index: HashMap<EntryId, LogIndex>,
}

impl RaftNode {
    /// Creates a fresh node with a bootstrap configuration known to all
    /// initial members.
    ///
    /// # Panics
    ///
    /// Panics if `bootstrap` is empty or does not contain `id`, or if
    /// `timing` is inconsistent (see [`Timing::validate`]).
    pub fn new(id: NodeId, bootstrap: Configuration, timing: Timing, rng: SimRng) -> Self {
        timing.validate();
        assert!(!bootstrap.is_empty(), "bootstrap configuration is empty");
        assert!(
            bootstrap.contains(id),
            "node {id} not in bootstrap configuration"
        );
        RaftNode {
            id,
            timing,
            rng,
            current_term: Term::ZERO,
            voted_for: None,
            log: SparseLog::new(),
            snapshot: None,
            commit_index: LogIndex::ZERO,
            applied_index: LogIndex::ZERO,
            reads_awaiting_apply: Vec::new(),
            state_digest: 0,
            role: Role::Follower,
            leader_hint: None,
            config: bootstrap,
            config_index: LogIndex::ZERO,
            votes: BTreeSet::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            learners: BTreeSet::new(),
            sessions: SessionTable::new(),
            next_seq: 0,
            reserved_seqs: 0,
            pending: BTreeMap::new(),
            client_writes: HashMap::new(),
            client_reads: BTreeSet::new(),
            reads: ReadIndexQueue::new(),
            local_now: SimTime::ZERO,
            lease: LeaseState::new(),
            vote_hold: VoteHold::new(),
            id_index: HashMap::new(),
        }
    }

    /// Rebuilds a node from stable storage after a crash (§II). Volatile
    /// state — commit index, role, leader knowledge — is relearned from the
    /// protocol.
    pub fn recover(
        id: NodeId,
        stable: &StableState,
        bootstrap: Configuration,
        timing: Timing,
        rng: SimRng,
    ) -> Self {
        let mut node = RaftNode::new(id, bootstrap, timing, rng);
        node.current_term = stable.global.current_term;
        node.voted_for = stable.global.voted_for;
        node.log = stable.global.log.clone();
        // Snapshot-aware recovery: the snapshot's prefix is known committed
        // and already applied, so the commit index resumes at the compaction
        // horizon instead of replaying (now unavailable) history.
        node.snapshot = stable.global.snapshot.clone();
        node.commit_index = node.log.compacted_through();
        node.applied_index = node.commit_index;
        if let Some(snap) = &node.snapshot {
            node.config = snap.config.clone();
            node.config_index = snap.last_index;
            node.sessions = snap.sessions.clone();
            if let Some(digest) = snap.state_digest() {
                node.state_digest = digest;
            }
        }
        if let Some((idx, cfg)) = node.log.latest_config() {
            node.config = cfg.clone();
            node.config_index = idx;
        }
        for (idx, entry) in node.log.iter() {
            node.id_index.insert(entry.id, idx);
        }
        // Resume the proposal counter above every persisted reservation:
        // re-minting a pre-crash id would hit the peers' id-dedup and
        // silently answer the *old* entry's commit for the new proposal.
        node.next_seq = stable.global.proposal_seq_floor;
        node.reserved_seqs = stable.global.proposal_seq_floor;
        node
    }

    /// This node's current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The current term.
    pub fn current_term(&self) -> Term {
        self.current_term
    }

    /// The highest committed index.
    pub fn commit_index(&self) -> LogIndex {
        self.commit_index
    }

    /// The highest index applied to the state machine. Equal to
    /// [`RaftNode::commit_index`] except transiently under
    /// [`Timing::pipelined_apply`], between commit and the drain stage.
    pub fn applied_index(&self) -> LogIndex {
        self.applied_index
    }

    /// The replicated log (read-only).
    pub fn log(&self) -> &SparseLog {
        &self.log
    }

    /// The latest snapshot covering the compacted prefix, if any.
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.snapshot.as_ref()
    }

    /// Running digest of the committed sequence (the simulated state
    /// machine's state).
    pub fn state_digest(&self) -> u64 {
        self.state_digest
    }

    /// The configuration this node currently obeys.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// The node this site believes is leader.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// Number of proposals issued here and not yet known committed.
    pub fn pending_proposals(&self) -> usize {
        self.pending.len()
    }

    /// The per-session exactly-once dedup table (applied state).
    pub fn sessions(&self) -> &SessionTable {
        &self.sessions
    }

    // ------------------------------------------------------------------
    // Administrative API (the paper assumes a system administrator drives
    // classic-Raft membership changes, §III-A).
    // ------------------------------------------------------------------

    /// Registers a catch-up (non-voting) member the leader replicates to.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeader`] when called on a non-leader.
    pub fn admin_add_learner(&mut self, node: NodeId) -> Result<(), NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader {
                leader_hint: self.leader_hint,
            });
        }
        self.learners.insert(node);
        self.next_index.insert(node, self.commit_index.next());
        self.match_index.insert(node, LogIndex::ZERO);
        Ok(())
    }

    /// Proposes a new configuration (single-site change enforced), appending
    /// a config entry to the leader's log. The change takes effect at each
    /// site when *inserted* (§III-A) and is safe once committed.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeader`] on a non-leader.
    ///
    /// # Panics
    ///
    /// Panics if `new_config` differs from the current configuration by more
    /// than one site (§IV-D safety precondition).
    pub fn admin_propose_config(
        &mut self,
        new_config: Configuration,
        out: &mut Actions<RaftMessage>,
    ) -> Result<EntryId, NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader {
                leader_hint: self.leader_hint,
            });
        }
        assert!(
            self.config.diff_is_single_change(&new_config),
            "configuration change must add or remove at most one site"
        );
        let id = self.fresh_id(out);
        let entry = LogEntry::config(self.current_term, id, new_config);
        self.leader_append(entry, out);
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Mints a proposal id, extending the persisted sequence reservation
    /// when the current block runs out. The reservation is write-ahead —
    /// durable before any message carrying the id leaves this site — so a
    /// recovered node (see [`RaftNode::recover`]) never re-mints an id a
    /// peer might still hold in its dedup index.
    fn fresh_id(&mut self, out: &mut Actions<RaftMessage>) -> EntryId {
        if self.next_seq >= self.reserved_seqs {
            self.reserved_seqs = self.next_seq + SEQ_RESERVE_BLOCK;
            out.persist(PersistCmd::ReserveProposalSeqs {
                scope: LogScope::Global,
                through: self.reserved_seqs,
            });
        }
        let id = EntryId::new(self.id, self.next_seq);
        self.next_seq += 1;
        id
    }

    fn persist_term_vote(&self, out: &mut Actions<RaftMessage>) {
        out.persist(PersistCmd::SetTermVote {
            scope: LogScope::Global,
            term: self.current_term,
            voted_for: self.voted_for,
        });
    }

    fn insert_entry(&mut self, index: LogIndex, entry: LogEntry, out: &mut Actions<RaftMessage>) {
        self.id_index.insert(entry.id, index);
        if let Some(cfg) = entry.as_config() {
            // "Each site considers the last appended configuration entry to
            // be its current configuration."
            if index >= self.config_index {
                self.config = cfg.clone();
                self.config_index = index;
            }
        }
        out.persist(PersistCmd::Insert {
            scope: LogScope::Global,
            index,
            entry: entry.clone(),
        });
        self.log.insert(index, entry);
    }

    fn truncate_from(&mut self, from: LogIndex, out: &mut Actions<RaftMessage>) {
        let removed: Vec<(LogIndex, EntryId)> = self
            .log
            .range(from, self.log.last_index())
            .map(|(i, e)| (i, e.id))
            .collect();
        for (_, id) in &removed {
            self.id_index.remove(id);
        }
        self.log.truncate_from(from);
        out.persist(PersistCmd::Truncate {
            scope: LogScope::Global,
            from,
        });
        // A truncated config entry reverts the configuration to the latest
        // surviving one.
        if self.config_index >= from {
            if let Some((idx, cfg)) = self.log.latest_config() {
                self.config = cfg.clone();
                self.config_index = idx;
            }
        }
    }

    fn leader_append(&mut self, entry: LogEntry, out: &mut Actions<RaftMessage>) -> LogIndex {
        let index = self.log.last_index().next();
        self.insert_entry(index, entry, out);
        self.match_index.insert(self.id, index);
        // A single-node configuration reaches quorum on its own ack.
        self.advance_commit(out);
        index
    }

    fn become_follower(
        &mut self,
        term: Term,
        leader: Option<NodeId>,
        out: &mut Actions<RaftMessage>,
    ) {
        let was_leader = self.role == Role::Leader;
        // Leadership (or the term it was confirmed under) is gone: any read
        // still awaiting its ReadIndex confirmation must not be answered,
        // and collected lease grants are void (they promised a quorum for
        // *this* leadership).
        self.fail_pending_reads(out);
        self.lease.clear();
        if term > self.current_term {
            self.current_term = term;
            self.voted_for = None;
            self.persist_term_vote(out);
        }
        self.role = Role::Follower;
        if leader.is_some() {
            self.leader_hint = leader;
        }
        self.votes.clear();
        if was_leader {
            out.cancel_timer(TimerKind::Heartbeat);
        }
        self.reset_election_timer(out);
        out.observe(Observation::BecameFollower {
            term: self.current_term,
        });
    }

    fn reset_election_timer(&mut self, out: &mut Actions<RaftMessage>) {
        let timeout = self.timing.election_timeout(&mut self.rng);
        out.set_timer(TimerKind::Election, timeout);
    }

    fn start_election(&mut self, out: &mut Actions<RaftMessage>) {
        if !self.config.contains(self.id) {
            // A removed site must not start elections.
            out.observe(Observation::MessageIgnored {
                reason: "election by non-member suppressed",
            });
            self.reset_election_timer(out);
            return;
        }
        self.role = Role::Candidate;
        self.current_term = self.current_term.next();
        self.voted_for = Some(self.id);
        self.persist_term_vote(out);
        self.votes.clear();
        self.votes.insert(self.id);
        out.observe(Observation::ElectionStarted {
            term: self.current_term,
        });
        let last = self.log.last_index();
        let msg = RaftMessage::RequestVote {
            term: self.current_term,
            candidate: self.id,
            last_log_index: last,
            last_log_term: self.log.term_at(last),
        };
        let peers: Vec<NodeId> = self.config.peers(self.id).collect();
        out.send_many(peers, msg);
        self.reset_election_timer(out);
        self.maybe_win(out);
    }

    fn maybe_win(&mut self, out: &mut Actions<RaftMessage>) {
        if self.role != Role::Candidate {
            return;
        }
        let quorum = self.config.classic_quorum();
        let valid_votes = self
            .votes
            .iter()
            .filter(|v| self.config.contains(**v))
            .count();
        if valid_votes >= quorum {
            self.become_leader(out);
        }
    }

    fn become_leader(&mut self, out: &mut Actions<RaftMessage>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        out.observe(Observation::BecameLeader {
            term: self.current_term,
        });
        // Arm the lease behind the new-leader barrier: a lease the deposed
        // leader could still be serving under expires within
        // `lease_duration + max_clock_skew` of this instant (its newest
        // grant predates this election win), so waiting that window out
        // before serving lease reads makes the handover safe even against
        // grants this node never saw. Inert while clockless or disabled.
        self.lease.clear();
        if !self.timing.lease_duration.is_zero() {
            self.lease.enable_after(
                self.local_now,
                self.timing.lease_duration + self.timing.max_clock_skew,
            );
        }
        let start = self.log.last_index().next();
        self.next_index.clear();
        self.match_index.clear();
        for peer in self.config.iter().chain(self.learners.iter().copied()) {
            self.next_index.insert(peer, start);
            self.match_index.insert(peer, LogIndex::ZERO);
        }
        // Standard practice (Raft dissertation §6.4): commit a no-op of the
        // new term so earlier-term entries become committable.
        let id = self.fresh_id(out);
        let noop = LogEntry::noop(self.current_term, id);
        self.leader_append(noop, out);
        out.cancel_timer(TimerKind::Election);
        // Initial heartbeat immediately; steady-state dispatch stays
        // heartbeat-gated.
        self.dispatch_append_entries(out);
        out.set_timer(TimerKind::Heartbeat, self.timing.heartbeat);
    }

    fn dispatch_append_entries(&mut self, out: &mut Actions<RaftMessage>) {
        let last = self.log.last_index();
        let budget = self.timing.append_budget();
        // Group followers by nextIndex: one budgeted batch is assembled per
        // distinct resume point and the Arc-shared EntryList handle is
        // cloned per recipient, so the fan-out shares a single allocation.
        let mut groups: BTreeMap<LogIndex, Vec<NodeId>> = BTreeMap::new();
        for peer in self
            .config
            .peers(self.id)
            .chain(self.learners.iter().copied().filter(|l| *l != self.id))
        {
            let next = *self
                .next_index
                .get(&peer)
                .unwrap_or(&self.commit_index.next());
            groups.entry(next).or_default().push(peer);
        }
        for (next, peers) in groups {
            // A follower whose resume point fell below the first retained
            // index cannot be served from the log anymore: transfer the
            // compacted prefix as a snapshot instead (its ack moves
            // nextIndex above the horizon and replication resumes normally).
            if next < self.log.first_index() {
                if let Some(snapshot) = self.current_snapshot() {
                    for peer in peers {
                        out.send(
                            peer,
                            RaftMessage::InstallSnapshot {
                                term: self.current_term,
                                leader: self.id,
                                snapshot: snapshot.clone(),
                            },
                        );
                    }
                }
                continue;
            }
            let prev_index = next.prev_saturating();
            let prev_term = self.log.term_at(prev_index);
            let entries = if last >= next {
                self.log.collect_range_budgeted(next, last, budget)
            } else {
                EntryList::empty()
            };
            for peer in peers {
                out.send(
                    peer,
                    RaftMessage::AppendEntries {
                        term: self.current_term,
                        leader: self.id,
                        prev_index,
                        prev_term,
                        entries: entries.clone(),
                        leader_commit: self.commit_index,
                        probe: self.reads.probe(),
                    },
                );
            }
        }
    }

    /// The snapshot to serve laggards: the cached one (always current —
    /// compaction refreshes it), synthesized from the log's horizon if a
    /// recovery somehow lost it.
    fn current_snapshot(&self) -> Option<Snapshot> {
        let horizon = self.log.compacted_through();
        if horizon.is_zero() {
            return None;
        }
        match &self.snapshot {
            Some(s) if s.last_index == horizon => Some(s.clone()),
            _ => Some(Snapshot {
                scope: LogScope::Global,
                last_index: horizon,
                last_term: self.log.compacted_term(),
                config: self.config_for_snapshot(horizon),
                state: Snapshot::digest_state(self.state_digest),
                sessions: self.sessions.clone(),
            }),
        }
    }

    /// Leader-side commit rule: the highest `k` with a classic quorum of
    /// `matchIndex ≥ k` and `log[k].term == currentTerm` becomes committed.
    fn advance_commit(&mut self, out: &mut Actions<RaftMessage>) {
        if self.role != Role::Leader {
            return;
        }
        let quorum = self.config.classic_quorum();
        let mut k = self.log.last_index();
        while k > self.commit_index {
            if self.log.term_at(k) == self.current_term {
                let acks = self
                    .config
                    .iter()
                    .filter(|m| self.match_index.get(m).copied().unwrap_or(LogIndex::ZERO) >= k)
                    .count();
                if acks >= quorum {
                    break;
                }
            }
            k = k.prev();
        }
        if k > self.commit_index {
            self.set_commit_index(k, out);
        }
    }

    /// Advances the commit index. Inline mode (the default) applies the
    /// newly committed range on the spot; under [`Timing::pipelined_apply`]
    /// the range is merely queued — `(applied_index, commit_index]` — and
    /// the embedding drains it as a separate stage, so the leader can
    /// assemble the next AppendEntries while this range applies.
    fn set_commit_index(&mut self, new_commit: LogIndex, out: &mut Actions<RaftMessage>) {
        if new_commit <= self.commit_index {
            return;
        }
        self.commit_index = new_commit;
        if !self.timing.pipelined_apply {
            self.apply_to_commit(out);
        }
    }

    /// Applies every committed-but-unapplied entry, in commit order, with
    /// effects identical to the inline path: digest fold, session-table
    /// apply, proposer/gateway notifications, commit records, compaction,
    /// and the release of reads whose floor the state machine just reached.
    fn apply_to_commit(&mut self, out: &mut Actions<RaftMessage>) {
        while self.applied_index < self.commit_index {
            let k = self.applied_index.next();
            if let Some(entry) = self.log.get(k).cloned() {
                self.state_digest = fold_commit_digest(self.state_digest, k, entry.id);
                if entry.payload.is_config() {
                    out.observe(Observation::ConfigCommitted {
                        members: entry.as_config().map(Configuration::len).unwrap_or(0),
                    });
                }
                self.apply_committed_entry(k, &entry, out);
                self.evict_idle_sessions(k, out);
                out.commit(LogScope::Global, k, entry);
            }
            self.applied_index = k;
        }
        self.maybe_compact(out);
        self.release_applied_reads(out);
    }

    /// Answers queued linearizable reads whose admission floor the applied
    /// state now covers (pipelined apply only; a no-op inline, where reads
    /// are never queued).
    fn release_applied_reads(&mut self, out: &mut Actions<RaftMessage>) {
        if self.reads_awaiting_apply.is_empty() {
            return;
        }
        let applied = self.applied_index;
        let ready: Vec<PendingReadAnswer> = {
            let (ready, waiting) = std::mem::take(&mut self.reads_awaiting_apply)
                .into_iter()
                .partition(|r| r.floor <= applied);
            self.reads_awaiting_apply = waiting;
            ready
        };
        for r in ready {
            self.respond_client(
                r.reply_to,
                r.session,
                r.seq,
                ClientOutcome::ReadOk {
                    scope: LogScope::Global,
                    commit_floor: r.floor,
                },
                out,
            );
        }
    }

    /// Emits a linearizable read's answer — immediately when the applied
    /// state already covers the admission floor (always true inline), queued
    /// behind the apply pipeline otherwise, so the client can never observe
    /// state older than the floor its read was admitted at.
    fn answer_read(
        &mut self,
        reply_to: NodeId,
        session: SessionId,
        seq: u64,
        floor: LogIndex,
        out: &mut Actions<RaftMessage>,
    ) {
        if floor <= self.applied_index {
            self.respond_client(
                reply_to,
                session,
                seq,
                ClientOutcome::ReadOk {
                    scope: LogScope::Global,
                    commit_floor: floor,
                },
                out,
            );
        } else {
            self.reads_awaiting_apply.push(PendingReadAnswer {
                reply_to,
                session,
                seq,
                floor,
            });
        }
    }

    /// Deterministic session expiry (per committed index, in committed log
    /// distance): every replica applies the identical eviction sequence, so
    /// the digest fold keeps snapshots convergent.
    fn evict_idle_sessions(&mut self, at: LogIndex, out: &mut Actions<RaftMessage>) {
        for session in self.sessions.evict_idle(at, self.timing.session_ttl) {
            self.state_digest = wire::fold_session_evicted(self.state_digest, session);
            out.observe(Observation::SessionEvicted {
                scope: LogScope::Global,
                session,
                at,
            });
        }
    }

    /// Compacts the committed prefix into a snapshot once its retained
    /// length exceeds [`Timing::snapshot_threshold`]. Every role compacts —
    /// the committed prefix is immutable everywhere — so per-site log
    /// residency stays bounded, not just the leader's.
    fn maybe_compact(&mut self, out: &mut Actions<RaftMessage>) {
        let threshold = self.timing.snapshot_threshold;
        if threshold == 0 {
            return;
        }
        let horizon = self.log.compacted_through();
        // Compaction is bounded by the *applied* prefix, not the committed
        // one: the snapshot captures digest + session table, which are
        // apply-time state. Inline, applied == committed here; pipelined,
        // compaction simply runs at the drain stage.
        let retained_decided = self.applied_index.as_u64().saturating_sub(horizon.as_u64());
        if retained_decided <= threshold {
            return;
        }
        // Classic Raft logs are dense, so the whole decided prefix is
        // contiguous; compact_to would clamp at a hole regardless.
        let through = self.applied_index;
        let snapshot = Snapshot {
            scope: LogScope::Global,
            last_index: through,
            last_term: self.log.term_at(through),
            config: self.config_for_snapshot(through),
            state: Snapshot::digest_state(self.state_digest),
            sessions: self.sessions.clone(),
        };
        out.persist(PersistCmd::InstallSnapshot {
            snapshot: snapshot.clone(),
        });
        self.log.compact_to(through);
        self.snapshot = Some(snapshot);
        out.observe(Observation::LogCompacted {
            scope: LogScope::Global,
            through,
            retained: self.log.len(),
        });
    }

    /// The configuration in force at `through`: the current configuration
    /// when its entry sits at or below the cut, otherwise the newest config
    /// entry inside the retained prefix (falling back to the previous
    /// snapshot's, then the bootstrap configuration).
    fn config_for_snapshot(&self, through: LogIndex) -> Configuration {
        if self.config_index <= through {
            return self.config.clone();
        }
        let mut cfg = self.snapshot.as_ref().map(|s| s.config.clone());
        for (_, e) in self.log.range(self.log.first_index(), through) {
            if let Some(c) = e.as_config() {
                cfg = Some(c.clone());
            }
        }
        cfg.unwrap_or_else(|| self.config.clone())
    }

    /// Applies one committed entry to the (simulated) state machine: the
    /// session table for writes, plus proposer/gateway notifications.
    fn apply_committed_entry(
        &mut self,
        index: LogIndex,
        entry: &LogEntry,
        out: &mut Actions<RaftMessage>,
    ) {
        let (session, seq, is_register) = match &entry.payload {
            Payload::Write { session, seq, .. } => (*session, *seq, false),
            Payload::Register { session } => (*session, 1, true),
            _ => {
                if entry.id.proposer == self.id {
                    self.pending.remove(&entry.id);
                }
                return;
            }
        };
        // Apply-time expiry check — authoritative (the table covers every
        // commit below `index`): a committed duplicate placement that
        // outlived its session's eviction must not re-apply. Identical on
        // every replica, no digest fold; the proposer/gateway is still
        // notified through the normal path below. A registration is exempt:
        // it carries no value, so re-applying one past an eviction merely
        // re-opens an empty session — exactly the property that lets
        // registered sessions close the seq-1 boundary window.
        let outcome = if !is_register
            && self.timing.session_ttl > 0
            && self.sessions.is_expired_retry(session, seq)
        {
            ClientOutcome::SessionExpired
        } else {
            // Exactly-once apply: the dedup table is part of applied state,
            // so every replica — including one that recovered from a
            // snapshot + suffix — makes the same first-application decision.
            match self.sessions.apply(session, seq, index) {
                SessionApply::Applied => {
                    self.state_digest = fold_session_digest(self.state_digest, session, seq);
                    out.observe(Observation::SessionApplied {
                        scope: LogScope::Global,
                        session,
                        seq,
                        index,
                    });
                    if is_register {
                        ClientOutcome::Registered { session, index }
                    } else {
                        ClientOutcome::Committed { index }
                    }
                }
                SessionApply::Duplicate { first_index } => {
                    out.observe(Observation::SessionDuplicate {
                        scope: LogScope::Global,
                        session,
                        seq,
                        first_index,
                    });
                    if is_register {
                        ClientOutcome::Registered {
                            session,
                            index: first_index,
                        }
                    } else {
                        ClientOutcome::Duplicate { first_index }
                    }
                }
            }
        };
        if entry.id.proposer == self.id {
            self.pending.remove(&entry.id);
        }
        if self.client_writes.contains_key(&(session, seq)) {
            // The gateway observes its own commit: answer the client here.
            self.respond_client(self.id, session, seq, outcome, out);
        } else if self.role == Role::Leader && entry.id.proposer != self.id {
            // "The leader then notifies the proposer" — covers gateways that
            // lag behind the commit (they ignore non-pending replies).
            out.send(
                entry.id.proposer,
                RaftMessage::ClientReply {
                    session,
                    seq,
                    outcome,
                },
            );
        }
    }

    /// Answers a client request: as an observation when the gateway is this
    /// node, as a [`RaftMessage::ClientReply`] otherwise.
    fn respond_client(
        &mut self,
        to: NodeId,
        session: SessionId,
        seq: u64,
        outcome: ClientOutcome,
        out: &mut Actions<RaftMessage>,
    ) {
        if to == self.id {
            if let Some(id) = self.client_writes.remove(&(session, seq)) {
                self.pending.remove(&id);
            }
            self.client_reads.remove(&(session, seq));
            out.observe(Observation::ClientResponse {
                session,
                seq,
                outcome,
            });
        } else {
            out.send(
                to,
                RaftMessage::ClientReply {
                    session,
                    seq,
                    outcome,
                },
            );
        }
    }

    /// `true` when this node's applied session table provably covers every
    /// write the cluster has ever committed: it is the leader and an entry
    /// of its own term has committed (the shared
    /// [`wire::session_state_current`] condition). Only then is a
    /// door-level [`SessionTable::is_expired_retry`] verdict exact; on any
    /// other node (or a fresh leader before its first own-term commit) the
    /// table may simply lag and "expired" can be a false positive for a
    /// perfectly live session.
    fn applied_session_state_current(&self) -> bool {
        self.role == Role::Leader
            // Pipelined apply: the table only covers the *applied* prefix;
            // while the queue is non-empty the door verdict stays inexact
            // (answers degrade to Retry, never a wrong terminal refusal).
            && self.applied_index == self.commit_index
            && session_state_current(&self.log, self.commit_index, self.current_term)
    }

    fn on_propose(
        &mut self,
        from: NodeId,
        id: EntryId,
        session: SessionId,
        seq: u64,
        data: Bytes,
        out: &mut Actions<RaftMessage>,
    ) {
        if self.role != Role::Leader {
            if from != self.id {
                out.send(
                    from,
                    RaftMessage::ClientReply {
                        session,
                        seq,
                        outcome: ClientOutcome::Redirect {
                            leader_hint: self.leader_hint,
                        },
                    },
                );
            }
            return;
        }
        // Session dedup at the door: a seq the applied state already covers
        // is answered without touching the log — this is what survives
        // compaction and leader restarts (the table rides in the snapshot).
        if let Some(first_index) = self.sessions.duplicate_of(session, seq) {
            self.respond_client(
                from,
                session,
                seq,
                ClientOutcome::Duplicate { first_index },
                out,
            );
            return;
        }
        if self.id_index.contains_key(&id) {
            // In-flight duplicate (gateway retried): already replicating.
            return;
        }
        // Stale write from an expired (evicted) session. This must run
        // *after* the in-flight dedup above, and the terminal refusal is
        // only trustworthy once this leader's applied table provably
        // covers every commit (`applied_session_state_current`): a fresh
        // leader's table merely *lags* until an entry of its own term
        // commits, so "expired" can be a false positive for a live
        // session whose writes are committed but not yet applied here —
        // terminally refusing then ("placed nowhere") while the placement
        // survives and later applies would have the client reopen a
        // session and resubmit, applying the op twice. Until current, the
        // answer is a plain Retry; once current, refusal is exact and
        // terminal (re-sending the same seq would loop forever), and any
        // same-pair placement still in the log under a different proposal
        // id is skipped by the authoritative apply-time check.
        if self.timing.session_ttl > 0 && self.sessions.is_expired_retry(session, seq) {
            let outcome = if self.applied_session_state_current() {
                ClientOutcome::SessionExpired
            } else {
                ClientOutcome::Retry
            };
            self.respond_client(from, session, seq, outcome, out);
            return;
        }
        // In-flight duplicate under a *different* proposal id (the gateway
        // restarted and re-submitted the same session seq): let it through —
        // apply-time dedup keeps the second commit a no-op.
        let entry = LogEntry::write(self.current_term, id, session, seq, data);
        self.leader_append(entry, out);
        // Dispatch stays heartbeat-gated; the entry travels on the next tick.
    }

    /// Leader door for an explicit session registration: the committed
    /// [`Payload::Register`] consumes seq 1 of the session, so a later
    /// eviction can never leave a re-appliable *data* write at the
    /// session's boundary (see [`ClientOp::Register`]).
    fn leader_register(&mut self, id: EntryId, session: SessionId, out: &mut Actions<RaftMessage>) {
        debug_assert_eq!(self.role, Role::Leader);
        // Idempotent re-register: seq 1 already applied for this session.
        if let Some(first_index) = self.sessions.duplicate_of(session, 1) {
            self.respond_client(
                self.id,
                session,
                1,
                ClientOutcome::Registered {
                    session,
                    index: first_index,
                },
                out,
            );
            return;
        }
        if self.id_index.contains_key(&id) {
            // Already replicating (gateway retry).
            return;
        }
        // No expired-retry door: re-registering an evicted session is
        // harmless by construction — the registration carries no value, so
        // re-applying it merely re-opens an empty dedup window.
        let entry = LogEntry::register(self.current_term, id, session);
        self.leader_append(entry, out);
    }

    // ------------------------------------------------------------------
    // Linearizable reads (ReadIndex)
    // ------------------------------------------------------------------

    /// Leader side of a linearizable read: capture the commit floor, then
    /// confirm leadership with a heartbeat round before answering.
    fn register_read(
        &mut self,
        session: SessionId,
        seq: u64,
        reply_to: NodeId,
        out: &mut Actions<RaftMessage>,
    ) {
        debug_assert_eq!(self.role, Role::Leader);
        // A fresh leader's commit floor may lag entries committed by its
        // predecessor until the no-op of its own term commits (Raft §8):
        // until then the floor must not be served.
        if self.log.term_at(self.commit_index) != self.current_term {
            self.respond_client(reply_to, session, seq, ClientOutcome::Retry, out);
            return;
        }
        let floor = self.commit_index;
        // Lease fast path: a classic quorum of live grants proves no rival
        // can have been elected, so the current commit floor is linearizable
        // to serve locally — zero messages, zero round trips (see
        // `docs/CONSISTENCY.md` for the safety argument).
        if self
            .lease
            .valid_at(self.local_now, &self.config, self.id, self.timing.max_clock_skew)
        {
            out.observe(Observation::LeaseRead {
                session,
                seq,
                floor,
            });
            self.answer_read(reply_to, session, seq, floor, out);
            return;
        }
        if self.config.classic_quorum() <= 1 {
            // A single-voter configuration confirms itself.
            out.observe(Observation::ReadIndexRead {
                session,
                seq,
                floor,
            });
            self.answer_read(reply_to, session, seq, floor, out);
            return;
        }
        // Retry idempotence (see `wire::ReadIndexQueue::is_pending`): the
        // pending round answers the retry too; just re-probe for liveness.
        if self.reads.is_pending(session, seq, reply_to) {
            self.dispatch_append_entries(out);
            return;
        }
        self.reads.register(session, seq, reply_to, floor);
        // Confirm now rather than waiting out the heartbeat period.
        self.dispatch_append_entries(out);
    }

    /// Counts a follower's heartbeat ack toward pending ReadIndex rounds.
    fn note_read_ack(&mut self, from: NodeId, probe: u64, out: &mut Actions<RaftMessage>) {
        for r in self.reads.note_ack(from, probe, &self.config, self.id) {
            out.observe(Observation::ReadIndexRead {
                session: r.session,
                seq: r.seq,
                floor: r.floor,
            });
            self.answer_read(r.reply_to, r.session, r.seq, r.floor, out);
        }
    }

    /// Fails every pending ReadIndex round with `Retry` (leadership lost or
    /// re-confirmed under a different term).
    fn fail_pending_reads(&mut self, out: &mut Actions<RaftMessage>) {
        for r in self.reads.drain() {
            self.respond_client(r.reply_to, r.session, r.seq, ClientOutcome::Retry, out);
        }
    }

    /// Follower-side lease grant riding a successful append ack: a promise
    /// not to vote for anyone but `leader` before `now + lease_duration` on
    /// this node's clock, enforced locally via [`VoteHold`]. Returns
    /// [`SimTime::ZERO`] (no grant) when this node is clockless or leases
    /// are disabled.
    fn emit_lease_grant(&mut self, leader: NodeId) -> SimTime {
        if self.local_now == SimTime::ZERO || self.timing.lease_duration.is_zero() {
            return SimTime::ZERO;
        }
        let until = self.local_now + self.timing.lease_duration;
        self.vote_hold.note_grant(leader, until);
        until
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append_entries(
        &mut self,
        from: NodeId,
        term: Term,
        leader: NodeId,
        prev_index: LogIndex,
        prev_term: Term,
        entries: EntryList,
        leader_commit: LogIndex,
        probe: u64,
        out: &mut Actions<RaftMessage>,
    ) {
        if term < self.current_term {
            out.send(
                from,
                RaftMessage::AppendEntriesReply {
                    term: self.current_term,
                    success: false,
                    match_index: LogIndex::ZERO,
                    probe: 0,
                    lease_until: SimTime::ZERO,
                },
            );
            return;
        }
        // Valid leader for this (possibly newer) term.
        if term > self.current_term || self.role != Role::Follower {
            self.become_follower(term, Some(leader), out);
        } else {
            self.leader_hint = Some(leader);
            self.reset_election_timer(out);
        }

        // Log-matching check.
        if !prev_index.is_zero() && self.log.term_at(prev_index) != prev_term {
            out.send(
                from,
                RaftMessage::AppendEntriesReply {
                    term: self.current_term,
                    success: false,
                    // Safe resume hint: everything committed here matches the
                    // leader (Invariant 1), so the leader can restart there.
                    match_index: self.commit_index,
                    probe,
                    // Even a failed append came from the valid leader of this
                    // term (checked above), so the vote-hold grant is sound —
                    // it keeps a briefly log-diverged follower from voiding
                    // its leader's lease mid-repair.
                    lease_until: self.emit_lease_grant(leader),
                },
            );
            return;
        }

        // Defensive ceiling (shared with consensus-core via
        // `wire::MAX_INSERT_WINDOW`): the dense log materializes the
        // addressed span as slots, so an absurd index from a corrupt peer
        // must be dropped, not allocated. Classic-Raft entries are
        // contiguous from prev_index, so a jump past the window is
        // malformed — stop processing the batch there.
        let insert_bound =
            self.log.last_index().as_u64().max(self.commit_index.as_u64()) + MAX_INSERT_WINDOW;
        let mut last_new = prev_index;
        for (idx, entry) in entries.iter() {
            if idx.as_u64() > insert_bound {
                break;
            }
            // Entries at or below the commit index are already decided
            // (and possibly compacted away); writing there is never needed
            // and would violate the compaction horizon.
            if *idx > self.commit_index && self.log.term_at(*idx) != entry.term {
                if self.log.get(*idx).is_some() {
                    self.truncate_from(*idx, out);
                }
                self.insert_entry(*idx, entry.clone(), out);
            }
            last_new = *idx;
        }

        if leader_commit > self.commit_index {
            let new_commit = leader_commit.min(last_new);
            self.set_commit_index(new_commit, out);
        }

        out.send(
            from,
            RaftMessage::AppendEntriesReply {
                term: self.current_term,
                success: true,
                match_index: last_new,
                probe,
                lease_until: self.emit_lease_grant(leader),
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append_reply(
        &mut self,
        from: NodeId,
        term: Term,
        success: bool,
        match_index: LogIndex,
        probe: u64,
        lease_until: SimTime,
        out: &mut Actions<RaftMessage>,
    ) {
        if term > self.current_term {
            self.become_follower(term, None, out);
            return;
        }
        if self.role != Role::Leader || term < self.current_term {
            return;
        }
        // Collect the follower's lease grant (success or not — the promise
        // is about voting, not log state). A rejected grant means the
        // granter's clock runs ahead beyond the modeled bound: the lease
        // quietly degrades to the ReadIndex fallback rather than counting it.
        if !self.lease.record_grant(
            from,
            lease_until,
            self.local_now,
            self.timing.lease_duration,
            self.timing.max_clock_skew,
        ) {
            out.observe(Observation::MessageIgnored {
                reason: "lease grant beyond clock-skew bound",
            });
        }
        if success {
            let m = self.match_index.entry(from).or_insert(LogIndex::ZERO);
            if match_index > *m {
                *m = match_index;
            }
            self.next_index.insert(from, match_index.next());
            self.advance_commit(out);
            // A current-term ack confirms leadership for ReadIndex rounds
            // registered at or before the echoed probe.
            self.note_read_ack(from, probe, out);
        } else {
            // Back off using the follower's hint (its commit index).
            self.next_index.insert(from, match_index.next());
        }
    }

    /// Follower side of a snapshot transfer: replace the compacted prefix
    /// wholesale and resume replication above it.
    fn on_install_snapshot(
        &mut self,
        from: NodeId,
        term: Term,
        leader: NodeId,
        snapshot: Snapshot,
        out: &mut Actions<RaftMessage>,
    ) {
        if term < self.current_term {
            out.send(
                from,
                RaftMessage::InstallSnapshotReply {
                    term: self.current_term,
                    last_index: LogIndex::ZERO,
                },
            );
            return;
        }
        if term > self.current_term || self.role != Role::Follower {
            self.become_follower(term, Some(leader), out);
        } else {
            self.leader_hint = Some(leader);
            self.reset_election_timer(out);
        }
        let last_index = snapshot.last_index;
        if last_index <= self.commit_index {
            // Stale transfer: everything it covers is already committed
            // here. Ack our actual coverage so the leader resumes higher.
            out.send(
                from,
                RaftMessage::InstallSnapshotReply {
                    term: self.current_term,
                    last_index: self.commit_index,
                },
            );
            return;
        }
        let old_commit = self.commit_index;
        out.persist(PersistCmd::InstallSnapshot {
            snapshot: snapshot.clone(),
        });
        self.log.install_snapshot(last_index, snapshot.last_term);
        // Drop id mappings for entries the install discarded. Only mappings
        // at or below the *pre-install* commit index are known committed
        // (and may keep answering duplicate proposals as such) — an
        // uncommitted entry from a deposed leader's fork must not be
        // reported committed.
        let log = &self.log;
        self.id_index
            .retain(|_, idx| *idx <= old_commit || log.get(*idx).is_some());
        // Adopt the snapshot's configuration unless a *surviving* config
        // entry above the horizon supersedes it; a config entry the install
        // discarded (conflicting suffix) must no longer be obeyed.
        if self.config_index <= last_index || self.log.get(self.config_index).is_none() {
            self.config = snapshot.config.clone();
            self.config_index = last_index;
        }
        if let Some(digest) = snapshot.state_digest() {
            self.state_digest = digest;
        }
        // Adopt the applied session state: the snapshot's table covers
        // strictly more commits than ours (last_index > old commit). The
        // apply pipeline fast-forwards with it — the snapshot state already
        // subsumes any queued-but-undrained range, whose entries the
        // install just discarded.
        self.sessions = snapshot.sessions.clone();
        self.commit_index = last_index;
        self.applied_index = last_index;
        self.snapshot = Some(snapshot);
        out.observe(Observation::SnapshotInstalled {
            scope: LogScope::Global,
            last_index,
        });
        // Gateway sweep: writes submitted here whose application the
        // install fast-forwarded past must still be answered.
        self.sweep_client_pending(out);
        self.release_applied_reads(out);
        out.send(
            from,
            RaftMessage::InstallSnapshotReply {
                term: self.current_term,
                last_index,
            },
        );
    }

    /// Answers any locally pending write the session table now covers (a
    /// snapshot install can jump the commit floor across its application).
    fn sweep_client_pending(&mut self, out: &mut Actions<RaftMessage>) {
        let done: Vec<(SessionId, u64, LogIndex, bool)> = self
            .client_writes
            .iter()
            .filter_map(|(&(s, q), id)| {
                self.sessions.duplicate_of(s, q).map(|idx| {
                    let reg = self.pending.get(id).is_some_and(|w| w.register);
                    (s, q, idx, reg)
                })
            })
            .collect();
        for (session, seq, first_index, register) in done {
            let outcome = if register {
                ClientOutcome::Registered {
                    session,
                    index: first_index,
                }
            } else {
                ClientOutcome::Duplicate { first_index }
            };
            self.respond_client(self.id, session, seq, outcome, out);
        }
    }

    fn on_install_snapshot_reply(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: LogIndex,
        out: &mut Actions<RaftMessage>,
    ) {
        if term > self.current_term {
            self.become_follower(term, None, out);
            return;
        }
        if self.role != Role::Leader || term < self.current_term {
            return;
        }
        let m = self.match_index.entry(from).or_insert(LogIndex::ZERO);
        if last_index > *m {
            *m = last_index;
        }
        self.next_index.insert(from, last_index.next());
        self.advance_commit(out);
    }

    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: Term,
        candidate: NodeId,
        last_log_index: LogIndex,
        last_log_term: Term,
        out: &mut Actions<RaftMessage>,
    ) {
        if !self.config.contains(candidate) {
            out.observe(Observation::MessageIgnored {
                reason: "vote request from non-member",
            });
            return;
        }
        // Lease hold: the ack this node last sent carried a promise not to
        // elect anyone but its leader before `until` on this clock. The
        // request is dropped *without* adopting the candidate's term — a
        // partitioned candidate's term inflation must not depose a leader
        // whose lease a quorum still backs. The hold provably expires
        // before this node's own election timer can fire
        // (`Timing::validate` pins lease + skew ≤ election_min), so a dead
        // leader still gets replaced.
        if self.vote_hold.blocks(candidate, self.local_now) {
            out.observe(Observation::MessageIgnored {
                reason: "vote request during lease hold",
            });
            return;
        }
        // A leader whose own lease is live refuses too, again without
        // adopting the term: a quorum is promising not to elect anyone
        // else, so the candidate provably cannot win — stepping down would
        // only forfeit the lease's availability for nothing.
        if self.role == Role::Leader
            && self
                .lease
                .valid_at(self.local_now, &self.config, self.id, self.timing.max_clock_skew)
        {
            out.observe(Observation::MessageIgnored {
                reason: "vote request at leader with live lease",
            });
            return;
        }
        if term < self.current_term {
            out.send(
                from,
                RaftMessage::RequestVoteReply {
                    term: self.current_term,
                    granted: false,
                },
            );
            return;
        }
        if term > self.current_term {
            self.become_follower(term, None, out);
        }
        let my_last = self.log.last_index();
        let my_last_term = self.log.term_at(my_last);
        let up_to_date = (last_log_term, last_log_index) >= (my_last_term, my_last);
        let can_vote = self.voted_for.is_none() || self.voted_for == Some(candidate);
        let granted = up_to_date && can_vote;
        if granted {
            self.voted_for = Some(candidate);
            self.persist_term_vote(out);
            self.reset_election_timer(out);
        }
        out.send(
            from,
            RaftMessage::RequestVoteReply {
                term: self.current_term,
                granted,
            },
        );
    }

    fn on_vote_reply(
        &mut self,
        from: NodeId,
        term: Term,
        granted: bool,
        out: &mut Actions<RaftMessage>,
    ) {
        if term > self.current_term {
            self.become_follower(term, None, out);
            return;
        }
        if self.role != Role::Candidate || term < self.current_term || !granted {
            return;
        }
        self.votes.insert(from);
        self.maybe_win(out);
    }

    fn resend_pending(&mut self, out: &mut Actions<RaftMessage>) {
        if self.pending.is_empty() {
            return;
        }
        let proposals: Vec<(EntryId, PendingWrite)> = self
            .pending
            .iter()
            .map(|(id, w)| (*id, w.clone()))
            .collect();
        for (id, w) in proposals {
            self.route_write(id, w, out);
        }
        out.set_timer(TimerKind::ProposalRetry, self.timing.proposal_timeout);
    }

    /// Routes an in-flight session write: straight into the log at the
    /// leader, to the hinted leader otherwise, to every peer when no hint
    /// exists (non-leaders answer with a redirect).
    fn route_write(&mut self, id: EntryId, w: PendingWrite, out: &mut Actions<RaftMessage>) {
        if w.register {
            // Registration is leader-only: the Propose message carries no op
            // kind, so a non-leader gateway surfaces a redirect and the
            // client re-targets the hinted leader itself.
            if self.role == Role::Leader {
                self.leader_register(id, w.session, out);
            } else {
                self.respond_client(
                    self.id,
                    w.session,
                    w.seq,
                    ClientOutcome::Redirect {
                        leader_hint: self.leader_hint,
                    },
                    out,
                );
            }
            return;
        }
        if self.role == Role::Leader {
            self.on_propose(self.id, id, w.session, w.seq, w.data, out);
        } else if let Some(leader) = self.leader_hint {
            out.send(
                leader,
                RaftMessage::Propose {
                    id,
                    session: w.session,
                    seq: w.seq,
                    data: w.data,
                },
            );
        } else {
            let peers: Vec<NodeId> = self.config.peers(self.id).collect();
            out.send_many(
                peers,
                RaftMessage::Propose {
                    id,
                    session: w.session,
                    seq: w.seq,
                    data: w.data,
                },
            );
        }
    }

    /// Gateway handling of a typed outcome arriving from another node.
    fn on_client_reply(
        &mut self,
        session: SessionId,
        seq: u64,
        outcome: ClientOutcome,
        out: &mut Actions<RaftMessage>,
    ) {
        if let ClientOutcome::Redirect { leader_hint } = &outcome {
            if let Some(hint) = leader_hint {
                self.leader_hint = Some(*hint);
            }
            // A redirected *write* stays pending: the ProposalRetry timer
            // resubmits it against the updated hint. Re-routing here
            // synchronously would ping-pong at network RTT against a
            // deposed leader that still hints itself (and broadcast-storm
            // while no hint exists).
            if self.client_writes.contains_key(&(session, seq)) {
                return;
            }
            // A redirected read surfaces to the caller, who retries against
            // the (now updated) hint.
            if self.client_reads.remove(&(session, seq)) {
                out.observe(Observation::ClientResponse {
                    session,
                    seq,
                    outcome,
                });
            }
            return;
        }
        let was_write = self.client_writes.contains_key(&(session, seq));
        let was_read = self.client_reads.contains(&(session, seq));
        if was_write || was_read {
            self.respond_client(self.id, session, seq, outcome, out);
        }
    }
}

impl ConsensusProtocol for RaftNode {
    type Message = RaftMessage;

    fn id(&self) -> NodeId {
        self.id
    }

    fn set_local_clock(&mut self, now: SimTime) {
        self.local_now = now;
    }

    fn on_message(&mut self, from: NodeId, msg: RaftMessage, out: &mut Actions<RaftMessage>) {
        // Configuration filter: consensus messages from strangers are
        // ignored (§III-A). Client traffic is exempt: gateways need not be
        // voting members.
        match &msg {
            RaftMessage::Propose { .. }
            | RaftMessage::ClientRead { .. }
            | RaftMessage::ClientReply { .. } => {}
            _ => {
                if !self.config.contains(from) && !self.learners.contains(&from) {
                    out.observe(Observation::MessageIgnored {
                        reason: "sender not in configuration",
                    });
                    return;
                }
            }
        }
        match msg {
            RaftMessage::Propose {
                id,
                session,
                seq,
                data,
            } => self.on_propose(from, id, session, seq, data, out),
            RaftMessage::ClientRead { session, seq } => {
                if self.role == Role::Leader {
                    self.register_read(session, seq, from, out);
                } else {
                    out.send(
                        from,
                        RaftMessage::ClientReply {
                            session,
                            seq,
                            outcome: ClientOutcome::Redirect {
                                leader_hint: self.leader_hint,
                            },
                        },
                    );
                }
            }
            RaftMessage::ClientReply {
                session,
                seq,
                outcome,
            } => self.on_client_reply(session, seq, outcome, out),
            RaftMessage::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                leader_commit,
                probe,
            } => self.on_append_entries(
                from,
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                leader_commit,
                probe,
                out,
            ),
            RaftMessage::AppendEntriesReply {
                term,
                success,
                match_index,
                probe,
                lease_until,
            } => self.on_append_reply(from, term, success, match_index, probe, lease_until, out),
            RaftMessage::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, candidate, last_log_index, last_log_term, out),
            RaftMessage::RequestVoteReply { term, granted } => {
                self.on_vote_reply(from, term, granted, out)
            }
            RaftMessage::InstallSnapshot {
                term,
                leader,
                snapshot,
            } => self.on_install_snapshot(from, term, leader, snapshot, out),
            RaftMessage::InstallSnapshotReply { term, last_index } => {
                self.on_install_snapshot_reply(from, term, last_index, out)
            }
        }
    }

    fn on_timer(&mut self, kind: TimerKind, out: &mut Actions<RaftMessage>) {
        match kind {
            TimerKind::Election
                if self.role != Role::Leader => {
                    self.start_election(out);
                }
            TimerKind::Heartbeat
                if self.role == Role::Leader => {
                    self.dispatch_append_entries(out);
                    out.set_timer(TimerKind::Heartbeat, self.timing.heartbeat);
                }
            TimerKind::ProposalRetry => self.resend_pending(out),
            _ => {}
        }
    }

    fn on_client_request(&mut self, req: ClientRequest, out: &mut Actions<RaftMessage>) {
        let ClientRequest { session, seq, op } = req;
        match op {
            ClientOp::Write(data) => {
                // Applied already? Answer without proposing (retry-safe).
                if let Some(first_index) = self.sessions.duplicate_of(session, seq) {
                    self.respond_client(
                        self.id,
                        session,
                        seq,
                        ClientOutcome::Duplicate { first_index },
                        out,
                    );
                    return;
                }
                if self.client_writes.contains_key(&(session, seq)) {
                    // Already in flight: the retry timer keeps pushing it.
                    out.set_timer(TimerKind::ProposalRetry, self.timing.proposal_timeout);
                    return;
                }
                // Stale write from an expired session: the terminal refusal
                // is only exact when this gateway happens to be the leader
                // with a provably current applied table (see `on_propose`).
                // Any other gateway's table may simply lag the commit
                // sequence, so it must not refuse — the write is placed and
                // routed to the leader, whose door (or the authoritative
                // apply-time check) rules, relayed back via ClientReply.
                if self.timing.session_ttl > 0
                    && self.sessions.is_expired_retry(session, seq)
                    && self.applied_session_state_current()
                {
                    self.respond_client(
                        self.id,
                        session,
                        seq,
                        ClientOutcome::SessionExpired,
                        out,
                    );
                    return;
                }
                let id = self.fresh_id(out);
                let w = PendingWrite {
                    session,
                    seq,
                    data,
                    register: false,
                };
                self.pending.insert(id, w.clone());
                self.client_writes.insert((session, seq), id);
                self.route_write(id, w, out);
                out.set_timer(TimerKind::ProposalRetry, self.timing.proposal_timeout);
            }
            ClientOp::Register => {
                // Server-assigned id on request: derived from this gateway's
                // node id and proposal counter, so concurrent registrations
                // at different gateways cannot collide. A *retry* of an
                // unassigned registration may open a second (unused)
                // session; the TTL reclaims it.
                let session = if session.is_unassigned() {
                    SessionId::assigned(self.id, self.next_seq)
                } else {
                    session
                };
                if let Some(first_index) = self.sessions.duplicate_of(session, 1) {
                    self.respond_client(
                        self.id,
                        session,
                        1,
                        ClientOutcome::Registered {
                            session,
                            index: first_index,
                        },
                        out,
                    );
                    return;
                }
                if self.client_writes.contains_key(&(session, 1)) {
                    out.set_timer(TimerKind::ProposalRetry, self.timing.proposal_timeout);
                    return;
                }
                let id = self.fresh_id(out);
                let w = PendingWrite {
                    session,
                    seq: 1,
                    data: Bytes::new(),
                    register: true,
                };
                self.pending.insert(id, w.clone());
                self.client_writes.insert((session, 1), id);
                self.route_write(id, w, out);
                out.set_timer(TimerKind::ProposalRetry, self.timing.proposal_timeout);
            }
            // A single-level deployment has one log: the local and global
            // commit floors coincide, so both stale consistencies answer
            // from `commit_index` immediately.
            ClientOp::Read(Consistency::StaleLocal)
            | ClientOp::Read(Consistency::StaleGlobal) => {
                out.observe(Observation::ClientResponse {
                    session,
                    seq,
                    outcome: ClientOutcome::ReadOk {
                        scope: LogScope::Global,
                        commit_floor: self.commit_index,
                    },
                });
            }
            ClientOp::Read(Consistency::Linearizable) => {
                if self.role == Role::Leader {
                    self.client_reads.insert((session, seq));
                    self.register_read(session, seq, self.id, out);
                } else if let Some(leader) = self.leader_hint {
                    self.client_reads.insert((session, seq));
                    out.send(leader, RaftMessage::ClientRead { session, seq });
                } else {
                    // No leader known: tell the caller to retry after a
                    // backoff (an election is likely in progress).
                    out.observe(Observation::ClientResponse {
                        session,
                        seq,
                        outcome: ClientOutcome::Retry,
                    });
                }
            }
        }
    }

    fn bootstrap(&mut self, out: &mut Actions<RaftMessage>) {
        self.reset_election_timer(out);
    }

    fn pending_applies(&self) -> u64 {
        self.commit_index.as_u64() - self.applied_index.as_u64()
    }

    fn drain_applies(&mut self, out: &mut Actions<RaftMessage>) {
        self.apply_to_commit(out);
    }
}
