//! Classic Raft's message vocabulary (§III-A), extended with the typed
//! client-session surface (sessioned writes, linearizable reads).

use bytes::Bytes;
use des::SimTime;
use wire::{
    ClientOutcome, DecodeError, Decoder, Encoder, EntryId, EntryList, LogIndex, Message, NodeId,
    SessionId, Snapshot, Term, Wire,
};

/// Messages exchanged by classic Raft sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaftMessage {
    /// Gateway → leader: replicate this session-tagged write.
    Propose {
        /// Proposal identity (gateway + sequence), for in-flight dedup.
        id: EntryId,
        /// The issuing client session.
        session: SessionId,
        /// Session-local sequence number (retries reuse it).
        seq: u64,
        /// The value.
        data: Bytes,
    },
    /// Gateway → leader: run a linearizable ReadIndex round and answer with
    /// the confirmed commit floor.
    ClientRead {
        /// The issuing client session.
        session: SessionId,
        /// The request's sequence number.
        seq: u64,
    },
    /// Any site → gateway: the typed outcome of a client request
    /// (committed/duplicate write, read floor, redirect, retry).
    ClientReply {
        /// The session this answers.
        session: SessionId,
        /// The request's sequence number.
        seq: u64,
        /// What happened.
        outcome: ClientOutcome,
    },
    /// Leader → follower: replicate entries / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// Leader's id, for redirecting proposers.
        leader: NodeId,
        /// Index of the entry immediately before `entries`.
        prev_index: LogIndex,
        /// Term of the entry at `prev_index`.
        prev_term: Term,
        /// Entries to replicate (empty for pure heartbeat). `Arc`-shared:
        /// every follower addressed at the same `nextIndex` receives a
        /// handle to the same allocation.
        entries: EntryList,
        /// Leader's commit index.
        leader_commit: LogIndex,
        /// ReadIndex round tag: followers echo it in their reply, and a
        /// pending linearizable read only counts acks whose echoed probe is
        /// at least the probe current when the read was registered — an ack
        /// already in flight when the read arrived proves nothing about
        /// leadership at read time.
        probe: u64,
    },
    /// Follower → leader: AppendEntries outcome.
    AppendEntriesReply {
        /// Follower's term, so a stale leader steps down.
        term: Term,
        /// `true` if `prev_index`/`prev_term` matched and entries were
        /// appended.
        success: bool,
        /// Highest index now known to match the leader (valid when
        /// `success`); on failure, a hint for nextIndex back-off.
        match_index: LogIndex,
        /// Echo of the request's ReadIndex probe.
        probe: u64,
        /// Leader-lease grant accompanying a successful ack: the follower
        /// promises not to vote for a different leader before this instant
        /// **on its own clock** (`ack time + Timing::lease_duration`).
        /// [`SimTime::ZERO`] when the follower is clockless or the ack
        /// failed — no grant.
        lease_until: SimTime,
    },
    /// Candidate → all: request a vote (§III-A).
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// The candidate.
        candidate: NodeId,
        /// Index of candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of candidate's last log entry.
        last_log_term: Term,
    },
    /// Voter → candidate: the vote.
    RequestVoteReply {
        /// Voter's term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader → laggard follower: the follower's `nextIndex` fell below the
    /// leader's first retained log index, so the compacted prefix is
    /// transferred as a snapshot instead of replayed entry by entry.
    InstallSnapshot {
        /// Leader's term.
        term: Term,
        /// Leader's id.
        leader: NodeId,
        /// The snapshot covering the compacted prefix.
        snapshot: Snapshot,
    },
    /// Follower → leader: snapshot transfer outcome.
    InstallSnapshotReply {
        /// Follower's term, so a stale leader steps down.
        term: Term,
        /// Highest index the follower's log now covers via the snapshot
        /// (the leader resumes AppendEntries just above it).
        last_index: LogIndex,
    },
}

impl RaftMessage {
    /// Short tag for traces and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            RaftMessage::Propose { .. } => "propose",
            RaftMessage::ClientRead { .. } => "client_read",
            RaftMessage::ClientReply { .. } => "client_reply",
            RaftMessage::AppendEntries { .. } => "append_entries",
            RaftMessage::AppendEntriesReply { .. } => "append_entries_reply",
            RaftMessage::RequestVote { .. } => "request_vote",
            RaftMessage::RequestVoteReply { .. } => "request_vote_reply",
            RaftMessage::InstallSnapshot { .. } => "install_snapshot",
            RaftMessage::InstallSnapshotReply { .. } => "install_snapshot_reply",
        }
    }

    /// The term carried by the message, if any (client traffic is
    /// term-free).
    pub fn term(&self) -> Option<Term> {
        match self {
            RaftMessage::AppendEntries { term, .. }
            | RaftMessage::AppendEntriesReply { term, .. }
            | RaftMessage::RequestVote { term, .. }
            | RaftMessage::RequestVoteReply { term, .. }
            | RaftMessage::InstallSnapshot { term, .. }
            | RaftMessage::InstallSnapshotReply { term, .. } => Some(*term),
            RaftMessage::Propose { .. }
            | RaftMessage::ClientRead { .. }
            | RaftMessage::ClientReply { .. } => None,
        }
    }
}

impl Wire for RaftMessage {
    fn encode(&self, e: &mut Encoder) {
        match self {
            RaftMessage::Propose {
                id,
                session,
                seq,
                data,
            } => {
                e.put_u8(0);
                id.encode(e);
                session.encode(e);
                e.put_u64(*seq);
                data.encode(e);
            }
            RaftMessage::ClientRead { session, seq } => {
                e.put_u8(1);
                session.encode(e);
                e.put_u64(*seq);
            }
            RaftMessage::ClientReply {
                session,
                seq,
                outcome,
            } => {
                e.put_u8(8);
                session.encode(e);
                e.put_u64(*seq);
                outcome.encode(e);
            }
            RaftMessage::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                leader_commit,
                probe,
            } => {
                e.put_u8(2);
                term.encode(e);
                leader.encode(e);
                prev_index.encode(e);
                prev_term.encode(e);
                entries.encode(e);
                leader_commit.encode(e);
                e.put_u64(*probe);
            }
            RaftMessage::AppendEntriesReply {
                term,
                success,
                match_index,
                probe,
                lease_until,
            } => {
                e.put_u8(3);
                term.encode(e);
                success.encode(e);
                match_index.encode(e);
                e.put_u64(*probe);
                e.put_u64(lease_until.as_micros());
            }
            RaftMessage::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                e.put_u8(4);
                term.encode(e);
                candidate.encode(e);
                last_log_index.encode(e);
                last_log_term.encode(e);
            }
            RaftMessage::RequestVoteReply { term, granted } => {
                e.put_u8(5);
                term.encode(e);
                granted.encode(e);
            }
            RaftMessage::InstallSnapshot {
                term,
                leader,
                snapshot,
            } => {
                e.put_u8(6);
                term.encode(e);
                leader.encode(e);
                snapshot.encode(e);
            }
            RaftMessage::InstallSnapshotReply { term, last_index } => {
                e.put_u8(7);
                term.encode(e);
                last_index.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => RaftMessage::Propose {
                id: EntryId::decode(d)?,
                session: SessionId::decode(d)?,
                seq: d.u64()?,
                data: Bytes::decode(d)?,
            },
            1 => RaftMessage::ClientRead {
                session: SessionId::decode(d)?,
                seq: d.u64()?,
            },
            8 => RaftMessage::ClientReply {
                session: SessionId::decode(d)?,
                seq: d.u64()?,
                outcome: ClientOutcome::decode(d)?,
            },
            2 => RaftMessage::AppendEntries {
                term: Term::decode(d)?,
                leader: NodeId::decode(d)?,
                prev_index: LogIndex::decode(d)?,
                prev_term: Term::decode(d)?,
                entries: EntryList::decode(d)?,
                leader_commit: LogIndex::decode(d)?,
                probe: d.u64()?,
            },
            3 => RaftMessage::AppendEntriesReply {
                term: Term::decode(d)?,
                success: bool::decode(d)?,
                match_index: LogIndex::decode(d)?,
                probe: d.u64()?,
                lease_until: SimTime::from_micros(d.u64()?),
            },
            4 => RaftMessage::RequestVote {
                term: Term::decode(d)?,
                candidate: NodeId::decode(d)?,
                last_log_index: LogIndex::decode(d)?,
                last_log_term: Term::decode(d)?,
            },
            5 => RaftMessage::RequestVoteReply {
                term: Term::decode(d)?,
                granted: bool::decode(d)?,
            },
            6 => RaftMessage::InstallSnapshot {
                term: Term::decode(d)?,
                leader: NodeId::decode(d)?,
                snapshot: Snapshot::decode(d)?,
            },
            7 => RaftMessage::InstallSnapshotReply {
                term: Term::decode(d)?,
                last_index: LogIndex::decode(d)?,
            },
            tag => {
                return Err(DecodeError::InvalidTag {
                    ty: "RaftMessage",
                    tag,
                })
            }
        })
    }

    /// Allocation-free size computation (overrides the encode-and-measure
    /// default: the network layer charges `wire_size` on every send).
    fn encoded_len(&self) -> usize {
        1 + match self {
            RaftMessage::Propose { id, data, .. } => id.encoded_len() + 8 + 8 + data.encoded_len(),
            RaftMessage::ClientRead { .. } => 8 + 8,
            RaftMessage::ClientReply { outcome, .. } => 8 + 8 + outcome.encoded_len(),
            RaftMessage::AppendEntries { entries, .. } => {
                8 + 8 + 8 + 8 + entries.encoded_len() + 8 + 8
            }
            RaftMessage::AppendEntriesReply { .. } => 8 + 1 + 8 + 8 + 8,
            RaftMessage::RequestVote { .. } => 8 + 8 + 8 + 8,
            RaftMessage::RequestVoteReply { .. } => 8 + 1,
            RaftMessage::InstallSnapshot { snapshot, .. } => 8 + 8 + snapshot.encoded_len(),
            RaftMessage::InstallSnapshotReply { .. } => 8 + 8,
        }
    }
}

impl Message for RaftMessage {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::LogScope;

    fn roundtrip(m: &RaftMessage) {
        let b = m.to_bytes();
        assert_eq!(b.len(), m.wire_size());
        assert_eq!(&RaftMessage::from_bytes(&b).unwrap(), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&RaftMessage::Propose {
            id: EntryId::new(NodeId(1), 5),
            session: SessionId::client(1),
            seq: 6,
            data: Bytes::from_static(b"value"),
        });
        roundtrip(&RaftMessage::ClientRead {
            session: SessionId::client(1),
            seq: 7,
        });
        roundtrip(&RaftMessage::ClientReply {
            session: SessionId::client(1),
            seq: 7,
            outcome: ClientOutcome::ReadOk {
                scope: LogScope::Global,
                commit_floor: LogIndex(42),
            },
        });
        roundtrip(&RaftMessage::ClientReply {
            session: SessionId::client(2),
            seq: 1,
            outcome: ClientOutcome::Redirect {
                leader_hint: Some(NodeId(3)),
            },
        });
        roundtrip(&RaftMessage::AppendEntries {
            term: Term(3),
            leader: NodeId(2),
            prev_index: LogIndex(9),
            prev_term: Term(2),
            entries: EntryList::from_vec(vec![(
                LogIndex(10),
                wire::LogEntry::write(
                    Term(3),
                    EntryId::new(NodeId(1), 5),
                    SessionId::client(1),
                    6,
                    Bytes::from_static(b"v"),
                ),
            )]),
            leader_commit: LogIndex(9),
            probe: 4,
        });
        roundtrip(&RaftMessage::AppendEntriesReply {
            term: Term(3),
            success: false,
            match_index: LogIndex(4),
            probe: 4,
            lease_until: SimTime::from_millis(1234),
        });
        roundtrip(&RaftMessage::RequestVote {
            term: Term(4),
            candidate: NodeId(3),
            last_log_index: LogIndex(10),
            last_log_term: Term(3),
        });
        roundtrip(&RaftMessage::RequestVoteReply {
            term: Term(4),
            granted: true,
        });
        roundtrip(&RaftMessage::InstallSnapshot {
            term: Term(5),
            leader: NodeId(2),
            snapshot: Snapshot {
                scope: wire::LogScope::Global,
                last_index: LogIndex(128),
                last_term: Term(4),
                config: wire::Configuration::new([NodeId(1), NodeId(2)]),
                state: Snapshot::digest_state(42),
                sessions: wire::SessionTable::new(),
            },
        });
        roundtrip(&RaftMessage::InstallSnapshotReply {
            term: Term(5),
            last_index: LogIndex(128),
        });
    }

    #[test]
    fn kind_and_term() {
        let m = RaftMessage::RequestVoteReply {
            term: Term(4),
            granted: true,
        };
        assert_eq!(m.kind(), "request_vote_reply");
        assert_eq!(m.term(), Some(Term(4)));
        let p = RaftMessage::Propose {
            id: EntryId::new(NodeId(1), 0),
            session: SessionId::client(1),
            seq: 1,
            data: Bytes::new(),
        };
        assert_eq!(p.term(), None);
        assert_eq!(
            RaftMessage::ClientRead {
                session: SessionId::client(1),
                seq: 1
            }
            .term(),
            None
        );
    }

    #[test]
    fn heartbeat_is_small() {
        // An empty AppendEntries (pure heartbeat) should be compact —
        // bandwidth accounting depends on realistic sizes.
        let hb = RaftMessage::AppendEntries {
            term: Term(1),
            leader: NodeId(1),
            prev_index: LogIndex(0),
            prev_term: Term(0),
            entries: EntryList::empty(),
            leader_commit: LogIndex(0),
            probe: 0,
        };
        assert!(hb.wire_size() < 72, "heartbeat {} bytes", hb.wire_size());
    }
}
