//! Classic Raft's message vocabulary (§III-A).

use bytes::Bytes;
use wire::{
    DecodeError, Decoder, Encoder, EntryId, EntryList, LogIndex, Message, NodeId, Snapshot, Term,
    Wire,
};

/// Messages exchanged by classic Raft sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaftMessage {
    /// Proposer → leader: please replicate this value.
    Propose {
        /// Proposal identity (proposer + sequence), used for deduplication.
        id: EntryId,
        /// The value.
        data: Bytes,
    },
    /// Leader → proposer: the fate of a proposal.
    ProposeReply {
        /// The proposal this replies to.
        id: EntryId,
        /// `true` once the entry is committed.
        committed: bool,
        /// Where the proposer should send future proposals (set when the
        /// recipient is not the leader).
        leader_hint: Option<NodeId>,
    },
    /// Leader → follower: replicate entries / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// Leader's id, for redirecting proposers.
        leader: NodeId,
        /// Index of the entry immediately before `entries`.
        prev_index: LogIndex,
        /// Term of the entry at `prev_index`.
        prev_term: Term,
        /// Entries to replicate (empty for pure heartbeat). `Arc`-shared:
        /// every follower addressed at the same `nextIndex` receives a
        /// handle to the same allocation.
        entries: EntryList,
        /// Leader's commit index.
        leader_commit: LogIndex,
    },
    /// Follower → leader: AppendEntries outcome.
    AppendEntriesReply {
        /// Follower's term, so a stale leader steps down.
        term: Term,
        /// `true` if `prev_index`/`prev_term` matched and entries were
        /// appended.
        success: bool,
        /// Highest index now known to match the leader (valid when
        /// `success`); on failure, a hint for nextIndex back-off.
        match_index: LogIndex,
    },
    /// Candidate → all: request a vote (§III-A).
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// The candidate.
        candidate: NodeId,
        /// Index of candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of candidate's last log entry.
        last_log_term: Term,
    },
    /// Voter → candidate: the vote.
    RequestVoteReply {
        /// Voter's term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader → laggard follower: the follower's `nextIndex` fell below the
    /// leader's first retained log index, so the compacted prefix is
    /// transferred as a snapshot instead of replayed entry by entry.
    InstallSnapshot {
        /// Leader's term.
        term: Term,
        /// Leader's id.
        leader: NodeId,
        /// The snapshot covering the compacted prefix.
        snapshot: Snapshot,
    },
    /// Follower → leader: snapshot transfer outcome.
    InstallSnapshotReply {
        /// Follower's term, so a stale leader steps down.
        term: Term,
        /// Highest index the follower's log now covers via the snapshot
        /// (the leader resumes AppendEntries just above it).
        last_index: LogIndex,
    },
}

impl RaftMessage {
    /// Short tag for traces and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            RaftMessage::Propose { .. } => "propose",
            RaftMessage::ProposeReply { .. } => "propose_reply",
            RaftMessage::AppendEntries { .. } => "append_entries",
            RaftMessage::AppendEntriesReply { .. } => "append_entries_reply",
            RaftMessage::RequestVote { .. } => "request_vote",
            RaftMessage::RequestVoteReply { .. } => "request_vote_reply",
            RaftMessage::InstallSnapshot { .. } => "install_snapshot",
            RaftMessage::InstallSnapshotReply { .. } => "install_snapshot_reply",
        }
    }

    /// The term carried by the message, if any (Propose/ProposeReply are
    /// term-free client traffic).
    pub fn term(&self) -> Option<Term> {
        match self {
            RaftMessage::AppendEntries { term, .. }
            | RaftMessage::AppendEntriesReply { term, .. }
            | RaftMessage::RequestVote { term, .. }
            | RaftMessage::RequestVoteReply { term, .. }
            | RaftMessage::InstallSnapshot { term, .. }
            | RaftMessage::InstallSnapshotReply { term, .. } => Some(*term),
            RaftMessage::Propose { .. } | RaftMessage::ProposeReply { .. } => None,
        }
    }
}

impl Wire for RaftMessage {
    fn encode(&self, e: &mut Encoder) {
        match self {
            RaftMessage::Propose { id, data } => {
                e.put_u8(0);
                id.encode(e);
                data.encode(e);
            }
            RaftMessage::ProposeReply {
                id,
                committed,
                leader_hint,
            } => {
                e.put_u8(1);
                id.encode(e);
                committed.encode(e);
                leader_hint.encode(e);
            }
            RaftMessage::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                leader_commit,
            } => {
                e.put_u8(2);
                term.encode(e);
                leader.encode(e);
                prev_index.encode(e);
                prev_term.encode(e);
                entries.encode(e);
                leader_commit.encode(e);
            }
            RaftMessage::AppendEntriesReply {
                term,
                success,
                match_index,
            } => {
                e.put_u8(3);
                term.encode(e);
                success.encode(e);
                match_index.encode(e);
            }
            RaftMessage::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                e.put_u8(4);
                term.encode(e);
                candidate.encode(e);
                last_log_index.encode(e);
                last_log_term.encode(e);
            }
            RaftMessage::RequestVoteReply { term, granted } => {
                e.put_u8(5);
                term.encode(e);
                granted.encode(e);
            }
            RaftMessage::InstallSnapshot {
                term,
                leader,
                snapshot,
            } => {
                e.put_u8(6);
                term.encode(e);
                leader.encode(e);
                snapshot.encode(e);
            }
            RaftMessage::InstallSnapshotReply { term, last_index } => {
                e.put_u8(7);
                term.encode(e);
                last_index.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => RaftMessage::Propose {
                id: EntryId::decode(d)?,
                data: Bytes::decode(d)?,
            },
            1 => RaftMessage::ProposeReply {
                id: EntryId::decode(d)?,
                committed: bool::decode(d)?,
                leader_hint: Option::decode(d)?,
            },
            2 => RaftMessage::AppendEntries {
                term: Term::decode(d)?,
                leader: NodeId::decode(d)?,
                prev_index: LogIndex::decode(d)?,
                prev_term: Term::decode(d)?,
                entries: EntryList::decode(d)?,
                leader_commit: LogIndex::decode(d)?,
            },
            3 => RaftMessage::AppendEntriesReply {
                term: Term::decode(d)?,
                success: bool::decode(d)?,
                match_index: LogIndex::decode(d)?,
            },
            4 => RaftMessage::RequestVote {
                term: Term::decode(d)?,
                candidate: NodeId::decode(d)?,
                last_log_index: LogIndex::decode(d)?,
                last_log_term: Term::decode(d)?,
            },
            5 => RaftMessage::RequestVoteReply {
                term: Term::decode(d)?,
                granted: bool::decode(d)?,
            },
            6 => RaftMessage::InstallSnapshot {
                term: Term::decode(d)?,
                leader: NodeId::decode(d)?,
                snapshot: Snapshot::decode(d)?,
            },
            7 => RaftMessage::InstallSnapshotReply {
                term: Term::decode(d)?,
                last_index: LogIndex::decode(d)?,
            },
            tag => {
                return Err(DecodeError::InvalidTag {
                    ty: "RaftMessage",
                    tag,
                })
            }
        })
    }

    /// Allocation-free size computation (overrides the encode-and-measure
    /// default: the network layer charges `wire_size` on every send).
    fn encoded_len(&self) -> usize {
        1 + match self {
            RaftMessage::Propose { id, data } => id.encoded_len() + data.encoded_len(),
            RaftMessage::ProposeReply {
                id, leader_hint, ..
            } => id.encoded_len() + 1 + leader_hint.encoded_len(),
            RaftMessage::AppendEntries { entries, .. } => 8 + 8 + 8 + 8 + entries.encoded_len() + 8,
            RaftMessage::AppendEntriesReply { .. } => 8 + 1 + 8,
            RaftMessage::RequestVote { .. } => 8 + 8 + 8 + 8,
            RaftMessage::RequestVoteReply { .. } => 8 + 1,
            RaftMessage::InstallSnapshot { snapshot, .. } => 8 + 8 + snapshot.encoded_len(),
            RaftMessage::InstallSnapshotReply { .. } => 8 + 8,
        }
    }
}

impl Message for RaftMessage {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &RaftMessage) {
        let b = m.to_bytes();
        assert_eq!(b.len(), m.wire_size());
        assert_eq!(&RaftMessage::from_bytes(&b).unwrap(), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&RaftMessage::Propose {
            id: EntryId::new(NodeId(1), 5),
            data: Bytes::from_static(b"value"),
        });
        roundtrip(&RaftMessage::ProposeReply {
            id: EntryId::new(NodeId(1), 5),
            committed: true,
            leader_hint: Some(NodeId(2)),
        });
        roundtrip(&RaftMessage::AppendEntries {
            term: Term(3),
            leader: NodeId(2),
            prev_index: LogIndex(9),
            prev_term: Term(2),
            entries: EntryList::from_vec(vec![(
                LogIndex(10),
                wire::LogEntry::data(Term(3), EntryId::new(NodeId(1), 5), Bytes::from_static(b"v")),
            )]),
            leader_commit: LogIndex(9),
        });
        roundtrip(&RaftMessage::AppendEntriesReply {
            term: Term(3),
            success: false,
            match_index: LogIndex(4),
        });
        roundtrip(&RaftMessage::RequestVote {
            term: Term(4),
            candidate: NodeId(3),
            last_log_index: LogIndex(10),
            last_log_term: Term(3),
        });
        roundtrip(&RaftMessage::RequestVoteReply {
            term: Term(4),
            granted: true,
        });
        roundtrip(&RaftMessage::InstallSnapshot {
            term: Term(5),
            leader: NodeId(2),
            snapshot: Snapshot {
                scope: wire::LogScope::Global,
                last_index: LogIndex(128),
                last_term: Term(4),
                config: wire::Configuration::new([NodeId(1), NodeId(2)]),
                state: Snapshot::digest_state(42),
            },
        });
        roundtrip(&RaftMessage::InstallSnapshotReply {
            term: Term(5),
            last_index: LogIndex(128),
        });
    }

    #[test]
    fn kind_and_term() {
        let m = RaftMessage::RequestVoteReply {
            term: Term(4),
            granted: true,
        };
        assert_eq!(m.kind(), "request_vote_reply");
        assert_eq!(m.term(), Some(Term(4)));
        let p = RaftMessage::Propose {
            id: EntryId::new(NodeId(1), 0),
            data: Bytes::new(),
        };
        assert_eq!(p.term(), None);
    }

    #[test]
    fn heartbeat_is_small() {
        // An empty AppendEntries (pure heartbeat) should be compact —
        // bandwidth accounting depends on realistic sizes.
        let hb = RaftMessage::AppendEntries {
            term: Term(1),
            leader: NodeId(1),
            prev_index: LogIndex(0),
            prev_term: Term(0),
            entries: EntryList::empty(),
            leader_commit: LogIndex(0),
        };
        assert!(hb.wire_size() < 64, "heartbeat {} bytes", hb.wire_size());
    }
}
