//! Classic Raft's typed client surface: ReadIndex reads, typed write
//! outcomes, and session dedup at the gateway and the leader.

use des::SimRng;
use raft::testkit::Lockstep;
use raft::{RaftNode, Role, Timing};
use wire::{
    ClientOutcome, ClientRequest, Configuration, Consistency, LogIndex, NodeId, TimerKind,
};

fn cluster(n: u64) -> Lockstep<RaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(8000 + i),
        )
    }))
}

fn elect_leader(net: &mut Lockstep<RaftNode>) -> NodeId {
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    NodeId(0)
}

fn read_ok_floor(outcomes: &[ClientOutcome]) -> Option<LogIndex> {
    outcomes.iter().find_map(|o| match o {
        ClientOutcome::ReadOk { commit_floor, .. } => Some(*commit_floor),
        _ => None,
    })
}

#[test]
fn linearizable_read_covers_committed_write() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    let wkey = net.propose(NodeId(1), b"w");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let windex = net
        .responses_for(NodeId(1), wkey.0, wkey.1)
        .iter()
        .find_map(|o| match o {
            ClientOutcome::Committed { index } => Some(*index),
            _ => None,
        })
        .expect("write committed");
    // Read through a different follower; the ReadIndex round completes
    // within the forwarded exchange (leader dispatches probe heartbeats
    // immediately on registration).
    let rkey = net.read(NodeId(2), Consistency::Linearizable);
    net.deliver_all();
    let floor = read_ok_floor(&net.responses_for(NodeId(2), rkey.0, rkey.1))
        .expect("read answered");
    assert!(floor >= windex, "floor {floor} below completed write {windex}");
    net.assert_safety();
}

#[test]
fn fresh_leader_retries_reads_until_term_commit() {
    let mut net = cluster(3);
    // Elect, delivering only the vote exchange (two requests + two
    // replies): the term's no-op is appended but its AppendEntries acks
    // have not returned, so it is still uncommitted at the new leader.
    net.fire(NodeId(0), TimerKind::Election);
    for _ in 0..4 {
        net.deliver_one();
    }
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    assert_eq!(net.node(NodeId(0)).commit_index(), LogIndex::ZERO);
    let key = net.read(NodeId(0), Consistency::Linearizable);
    // Registration happens synchronously; the gate answers Retry because no
    // entry of the current term has committed yet.
    let outcomes = net.responses_for(NodeId(0), key.0, key.1);
    assert!(
        outcomes.iter().any(|o| matches!(o, ClientOutcome::Retry)),
        "fresh leader must not serve its stale floor: {outcomes:?}"
    );
    // After the no-op commits, the retry succeeds.
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let key2 = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        read_ok_floor(&net.responses_for(NodeId(0), key2.0, key2.1)).is_some(),
        "read must succeed once the term no-op committed"
    );
}

#[test]
fn stale_read_answers_without_leader() {
    let mut net = cluster(3);
    elect_leader(&mut net);
    net.crash(NodeId(0));
    let key = net.read(NodeId(2), Consistency::StaleLocal);
    assert!(
        read_ok_floor(&net.responses_for(NodeId(2), key.0, key.1)).is_some(),
        "stale reads need no leader"
    );
}

#[test]
fn read_without_known_leader_answers_retry() {
    let mut net = cluster(3);
    // No election yet: nobody has a leader hint.
    let key = net.read(NodeId(1), Consistency::Linearizable);
    let outcomes = net.responses_for(NodeId(1), key.0, key.1);
    assert!(
        outcomes.iter().any(|o| matches!(o, ClientOutcome::Retry)),
        "leaderless read should say Retry: {outcomes:?}"
    );
}

#[test]
fn duplicate_write_suppressed_across_gateways() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    let key = net.propose(NodeId(1), b"pay-once");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // The client's gateway crashed from its point of view; it re-sends the
    // same (session, seq) through a DIFFERENT gateway.
    net.client_request(
        NodeId(2),
        ClientRequest::write(key.0, key.1, b"pay-once"[..].into()),
    );
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let outcomes = net.responses_for(NodeId(2), key.0, key.1);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::Duplicate { .. })),
        "cross-gateway retry must be recognized: {outcomes:?}"
    );
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn reads_do_not_grow_the_log() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    let before = net.node(leader).log().last_index();
    for _ in 0..5 {
        net.read(NodeId(1), Consistency::Linearizable);
        net.deliver_all();
    }
    assert_eq!(
        net.node(leader).log().last_index(),
        before,
        "ReadIndex reads must not append log entries"
    );
    assert_eq!(net.node(leader).commit_index(), before);
    net.assert_safety();
}
