//! Leader-lease behavior in classic Raft: local lease reads, the fresh
//! leader enable barrier, ReadIndex fallback on lapse, and the follower
//! vote hold that makes the lease promise enforceable.
//!
//! The Lockstep testkit is clockless by default (leases stay inert, see
//! `wire::LeaseState`); these tests stamp every node's local clock by hand
//! to walk the lease through its lifecycle deterministically.

use des::{SimRng, SimTime};
use raft::testkit::Lockstep;
use raft::{RaftNode, Role, Timing};
use wire::{
    ClientOutcome, Configuration, Consistency, ConsensusProtocol, NodeId, Observation, TimerKind,
};

fn cluster(n: u64) -> Lockstep<RaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(), // lease 300 ms, skew bound 50 ms, barrier 350 ms
            SimRng::seed_from_u64(9100 + i),
        )
    }))
}

fn stamp_all(net: &mut Lockstep<RaftNode>, ms: u64) {
    for id in net.ids() {
        net.node_mut(id).set_local_clock(SimTime::from_millis(ms));
    }
}

/// Elects node 0 at clock `t=1000ms` and heartbeats at `t=1400ms`, past the
/// 350 ms enable barrier, leaving a live lease (grants good to 1700 ms).
fn elect_with_lease(net: &mut Lockstep<RaftNode>) -> NodeId {
    stamp_all(net, 1000);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    stamp_all(net, 1400);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    NodeId(0)
}

fn lease_reads(net: &Lockstep<RaftNode>) -> usize {
    net.observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::LeaseRead { .. }))
        .count()
}

fn readindex_reads(net: &Lockstep<RaftNode>) -> usize {
    net.observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::ReadIndexRead { .. }))
        .count()
}

#[test]
fn lease_read_is_local_and_message_free() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    stamp_all(&mut net, 1500);
    let key = net.read(leader, Consistency::Linearizable);
    // The answer must arrive from the handler itself: no quorum round.
    let outcomes = net.responses_for(leader, key.0, key.1);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "lease read unanswered: {outcomes:?}"
    );
    assert_eq!(lease_reads(&net), 1);
    assert_eq!(readindex_reads(&net), 0);
    assert!(
        !net.deliver_one(),
        "a lease-served read must put zero messages on the wire"
    );
    net.assert_safety();
}

#[test]
fn fresh_leader_blocks_lease_until_barrier_passes() {
    let mut net = cluster(3);
    stamp_all(&mut net, 1000);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    // Quorum grants are already recorded (append acks at t=1000), but the
    // enable barrier runs to 1000 + 300 + 50 = 1350: a predecessor could
    // still be serving under its own lease until then.
    stamp_all(&mut net, 1340);
    let key = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(NodeId(0), key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "barrier-window read must still succeed via ReadIndex"
    );
    assert_eq!(lease_reads(&net), 0, "lease served inside the barrier");
    assert_eq!(readindex_reads(&net), 1);
    // Past the barrier the same leader serves locally (the barrier-window
    // ReadIndex acks doubled as fresh grants).
    stamp_all(&mut net, 1360);
    let key2 = net.read(NodeId(0), Consistency::Linearizable);
    assert!(
        net.responses_for(NodeId(0), key2.0, key2.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn lapsed_lease_falls_back_to_readindex() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    // Jump far past every grant (1700 ms) without a heartbeat in between.
    stamp_all(&mut net, 5000);
    let key = net.read(leader, Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(leader, key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "lapsed-lease read must complete through the quorum round"
    );
    assert_eq!(lease_reads(&net), 0);
    assert_eq!(readindex_reads(&net), 1);
    // The fallback round's acks re-established the lease: the next read at
    // the same instant is local again.
    let key2 = net.read(leader, Consistency::Linearizable);
    assert!(
        net.responses_for(leader, key2.0, key2.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn lease_read_floor_covers_committed_write() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    stamp_all(&mut net, 1450);
    let wkey = net.propose(NodeId(1), b"w");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let windex = net
        .responses_for(NodeId(1), wkey.0, wkey.1)
        .iter()
        .find_map(|o| match o {
            ClientOutcome::Committed { index } => Some(*index),
            _ => None,
        })
        .expect("write committed");
    stamp_all(&mut net, 1500);
    let rkey = net.read(leader, Consistency::Linearizable);
    let floor = net
        .responses_for(leader, rkey.0, rkey.1)
        .iter()
        .find_map(|o| match o {
            ClientOutcome::ReadOk { commit_floor, .. } => Some(*commit_floor),
            _ => None,
        })
        .expect("lease read answered");
    assert!(floor >= windex, "floor {floor} below completed write {windex}");
    assert_eq!(lease_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn vote_hold_blocks_rival_and_preserves_leader_term() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    let term_before = net.node(leader).current_term();
    // A rival wakes up inside the hold window (grants run to 1700 ms).
    stamp_all(&mut net, 1450);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    // Follower 1 is bound by its grant; the leader itself refuses because
    // its lease is live. Neither adopted the inflated term.
    assert_eq!(net.node(leader).role(), Role::Leader);
    assert_eq!(net.node(leader).current_term(), term_before);
    assert_ne!(net.node(NodeId(2)).role(), Role::Leader);
    let ignored: Vec<&'static str> = net
        .observations()
        .iter()
        .filter_map(|(_, o)| match o {
            Observation::MessageIgnored { reason } if reason.contains("lease") => Some(*reason),
            _ => None,
        })
        .collect();
    assert!(
        ignored.contains(&"vote request during lease hold"),
        "follower hold never enforced: {ignored:?}"
    );
    assert!(
        ignored.contains(&"vote request at leader with live lease"),
        "leader self-defense never enforced: {ignored:?}"
    );
    // Liveness: once every promise has lapsed, the rival can win normally.
    stamp_all(&mut net, 4000);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(2)).role(), Role::Leader);
    net.assert_safety();
}

#[test]
fn stepped_down_leader_stops_serving_lease_reads() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    // Depose via a fresh election after all promises lapse.
    stamp_all(&mut net, 4000);
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).role(), Role::Leader);
    assert_eq!(net.node(leader).role(), Role::Follower);
    // The old leader's lease state was cleared on step-down: a lin read at
    // it redirects instead of answering from stale grants.
    let key = net.read(leader, Consistency::Linearizable);
    net.deliver_all();
    let outcomes = net.responses_for(leader, key.0, key.1);
    assert_eq!(lease_reads(&net), 0, "deposed leader served a lease read");
    assert!(
        outcomes
            .iter()
            .all(|o| !matches!(o, ClientOutcome::ReadOk { .. }) || readindex_reads(&net) > 0),
        "read answered without confirmation: {outcomes:?}"
    );
    net.assert_safety();
}

#[test]
fn clockless_embedding_keeps_readindex_behavior() {
    // Never stamp a clock: with lease knobs configured on, every handler
    // must behave exactly as the pre-lease protocol — reads pay the
    // ReadIndex round, votes are never refused.
    let mut net = cluster(3);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let key = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(NodeId(0), key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 0);
    assert_eq!(readindex_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn zero_lease_duration_disables_leases_under_live_clocks() {
    let mut timing = Timing::lan();
    timing.lease_duration = des::SimDuration::ZERO;
    timing.max_clock_skew = des::SimDuration::ZERO;
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut net = Lockstep::new((0..3).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(9200 + i),
        )
    }));
    stamp_all(&mut net, 1000);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    stamp_all(&mut net, 2000);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let key = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(NodeId(0), key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 0, "disabled lease still served a read");
    assert_eq!(readindex_reads(&net), 1);
}
