//! Leader-lease behavior in classic Raft: local lease reads, the fresh
//! leader enable barrier, ReadIndex fallback on lapse, and the follower
//! vote hold that makes the lease promise enforceable.
//!
//! The Lockstep testkit is clockless by default (leases stay inert, see
//! `wire::LeaseState`); these tests stamp every node's local clock by hand
//! to walk the lease through its lifecycle deterministically.

use des::{SimRng, SimTime};
use raft::testkit::Lockstep;
use raft::{RaftNode, Role, Timing};
use wire::{
    ClientOutcome, Configuration, Consistency, ConsensusProtocol, NodeId, Observation, TimerKind,
};

fn cluster(n: u64) -> Lockstep<RaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(), // lease 300 ms, skew bound 50 ms, barrier 350 ms
            SimRng::seed_from_u64(9100 + i),
        )
    }))
}

fn stamp_all(net: &mut Lockstep<RaftNode>, ms: u64) {
    for id in net.ids() {
        net.node_mut(id).set_local_clock(SimTime::from_millis(ms));
    }
}

/// Elects node 0 at clock `t=1000ms` and heartbeats at `t=1400ms`, past the
/// 350 ms enable barrier, leaving a live lease (grants good to 1700 ms).
fn elect_with_lease(net: &mut Lockstep<RaftNode>) -> NodeId {
    stamp_all(net, 1000);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    stamp_all(net, 1400);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    NodeId(0)
}

fn lease_reads(net: &Lockstep<RaftNode>) -> usize {
    net.observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::LeaseRead { .. }))
        .count()
}

fn readindex_reads(net: &Lockstep<RaftNode>) -> usize {
    net.observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::ReadIndexRead { .. }))
        .count()
}

#[test]
fn lease_read_is_local_and_message_free() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    stamp_all(&mut net, 1500);
    let key = net.read(leader, Consistency::Linearizable);
    // The answer must arrive from the handler itself: no quorum round.
    let outcomes = net.responses_for(leader, key.0, key.1);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "lease read unanswered: {outcomes:?}"
    );
    assert_eq!(lease_reads(&net), 1);
    assert_eq!(readindex_reads(&net), 0);
    assert!(
        !net.deliver_one(),
        "a lease-served read must put zero messages on the wire"
    );
    net.assert_safety();
}

#[test]
fn fresh_leader_blocks_lease_until_barrier_passes() {
    let mut net = cluster(3);
    stamp_all(&mut net, 1000);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    // Quorum grants are already recorded (append acks at t=1000), but the
    // enable barrier runs to 1000 + 300 + 50 = 1350: a predecessor could
    // still be serving under its own lease until then.
    stamp_all(&mut net, 1340);
    let key = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(NodeId(0), key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "barrier-window read must still succeed via ReadIndex"
    );
    assert_eq!(lease_reads(&net), 0, "lease served inside the barrier");
    assert_eq!(readindex_reads(&net), 1);
    // Past the barrier the same leader serves locally (the barrier-window
    // ReadIndex acks doubled as fresh grants).
    stamp_all(&mut net, 1360);
    let key2 = net.read(NodeId(0), Consistency::Linearizable);
    assert!(
        net.responses_for(NodeId(0), key2.0, key2.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn lapsed_lease_falls_back_to_readindex() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    // Jump far past every grant (1700 ms) without a heartbeat in between.
    stamp_all(&mut net, 5000);
    let key = net.read(leader, Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(leader, key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
        "lapsed-lease read must complete through the quorum round"
    );
    assert_eq!(lease_reads(&net), 0);
    assert_eq!(readindex_reads(&net), 1);
    // The fallback round's acks re-established the lease: the next read at
    // the same instant is local again.
    let key2 = net.read(leader, Consistency::Linearizable);
    assert!(
        net.responses_for(leader, key2.0, key2.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn lease_read_floor_covers_committed_write() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    stamp_all(&mut net, 1450);
    let wkey = net.propose(NodeId(1), b"w");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let windex = net
        .responses_for(NodeId(1), wkey.0, wkey.1)
        .iter()
        .find_map(|o| match o {
            ClientOutcome::Committed { index } => Some(*index),
            _ => None,
        })
        .expect("write committed");
    stamp_all(&mut net, 1500);
    let rkey = net.read(leader, Consistency::Linearizable);
    let floor = net
        .responses_for(leader, rkey.0, rkey.1)
        .iter()
        .find_map(|o| match o {
            ClientOutcome::ReadOk { commit_floor, .. } => Some(*commit_floor),
            _ => None,
        })
        .expect("lease read answered");
    assert!(floor >= windex, "floor {floor} below completed write {windex}");
    assert_eq!(lease_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn vote_hold_blocks_rival_and_preserves_leader_term() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    let term_before = net.node(leader).current_term();
    // A rival wakes up inside the hold window (grants run to 1700 ms).
    stamp_all(&mut net, 1450);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    // Follower 1 is bound by its grant; the leader itself refuses because
    // its lease is live. Neither adopted the inflated term.
    assert_eq!(net.node(leader).role(), Role::Leader);
    assert_eq!(net.node(leader).current_term(), term_before);
    assert_ne!(net.node(NodeId(2)).role(), Role::Leader);
    let ignored: Vec<&'static str> = net
        .observations()
        .iter()
        .filter_map(|(_, o)| match o {
            Observation::MessageIgnored { reason } if reason.contains("lease") => Some(*reason),
            _ => None,
        })
        .collect();
    assert!(
        ignored.contains(&"vote request during lease hold"),
        "follower hold never enforced: {ignored:?}"
    );
    assert!(
        ignored.contains(&"vote request at leader with live lease"),
        "leader self-defense never enforced: {ignored:?}"
    );
    // Liveness: once every promise has lapsed, the rival can win normally.
    stamp_all(&mut net, 4000);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(2)).role(), Role::Leader);
    net.assert_safety();
}

#[test]
fn stepped_down_leader_stops_serving_lease_reads() {
    let mut net = cluster(3);
    let leader = elect_with_lease(&mut net);
    // Depose via a fresh election after all promises lapse.
    stamp_all(&mut net, 4000);
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).role(), Role::Leader);
    assert_eq!(net.node(leader).role(), Role::Follower);
    // The old leader's lease state was cleared on step-down: a lin read at
    // it redirects instead of answering from stale grants.
    let key = net.read(leader, Consistency::Linearizable);
    net.deliver_all();
    let outcomes = net.responses_for(leader, key.0, key.1);
    assert_eq!(lease_reads(&net), 0, "deposed leader served a lease read");
    assert!(
        outcomes
            .iter()
            .all(|o| !matches!(o, ClientOutcome::ReadOk { .. }) || readindex_reads(&net) > 0),
        "read answered without confirmation: {outcomes:?}"
    );
    net.assert_safety();
}

#[test]
fn clockless_embedding_keeps_readindex_behavior() {
    // Never stamp a clock: with lease knobs configured on, every handler
    // must behave exactly as the pre-lease protocol — reads pay the
    // ReadIndex round, votes are never refused.
    let mut net = cluster(3);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let key = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(NodeId(0), key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 0);
    assert_eq!(readindex_reads(&net), 1);
    net.assert_safety();
}

#[test]
fn zero_lease_duration_disables_leases_under_live_clocks() {
    let mut timing = Timing::lan();
    timing.lease_duration = des::SimDuration::ZERO;
    timing.max_clock_skew = des::SimDuration::ZERO;
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut net = Lockstep::new((0..3).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(9200 + i),
        )
    }));
    stamp_all(&mut net, 1000);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    stamp_all(&mut net, 2000);
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let key = net.read(NodeId(0), Consistency::Linearizable);
    net.deliver_all();
    assert!(
        net.responses_for(NodeId(0), key.0, key.1)
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { .. })),
    );
    assert_eq!(lease_reads(&net), 0, "disabled lease still served a read");
    assert_eq!(readindex_reads(&net), 1);
}

// ---------------------------------------------------------------------
// Pipelined apply: a linearizable read admitted at commit floor `k` must
// never observe state behind `k`. Under `Timing::pipelined_apply` the
// answer is held until the drain stage catches the applied index up.

#[test]
fn pipelined_apply_holds_lease_read_until_floor_applied() {
    let mut timing = Timing::lan();
    timing.pipelined_apply = true;
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut net = Lockstep::new((0..3).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(9400 + i),
        )
    }));
    let leader = elect_with_lease(&mut net);
    // Clear the election-era apply backlog so the test isolates one write.
    net.with_node(leader, |n, out| n.drain_applies(out));
    stamp_all(&mut net, 1500);

    // Commit a write (dispatch is heartbeat-gated, so fire the tick): the
    // commit index advances, the apply stays queued.
    let wkey = net.propose(leader, b"pipelined");
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let k = net.node(leader).commit_index();
    assert!(
        net.node(leader).pending_applies() > 0,
        "commit should leave the apply queue non-empty under pipelining"
    );
    assert!(net.node(leader).applied_index() < k);
    assert!(
        net.responses_for(leader, wkey.0, wkey.1).is_empty(),
        "write acked before its entry was applied"
    );

    // A lease read is admitted immediately (floor = k) but not answered
    // while the applied index trails the floor: answering now would let
    // the read observe state older than its floor.
    let before = lease_reads(&net);
    let rkey = net.read(leader, Consistency::Linearizable);
    assert_eq!(lease_reads(&net), before + 1, "admission is not delayed");
    assert!(
        net.responses_for(leader, rkey.0, rkey.1).is_empty(),
        "read answered while applied index trailed its floor"
    );

    // The drain stage applies through k and releases both answers.
    net.with_node(leader, |n, out| n.drain_applies(out));
    assert_eq!(net.node(leader).applied_index(), k);
    assert!(net
        .responses_for(leader, wkey.0, wkey.1)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. })));
    let outcomes = net.responses_for(leader, rkey.0, rkey.1);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::ReadOk { commit_floor, .. } if *commit_floor >= k)),
        "read not released at a floor covering the write: {outcomes:?}"
    );
}

/// Pipelined apply is a scheduling change only: across random write
/// schedules and random drain points, the committed-sequence digest (and
/// commit horizon) match the inline twin exactly on every node.
#[test]
fn pipelined_and_inline_apply_agree_on_digests() {
    let run = |seed: u64, writes: u64, drain_mask: u64, pipelined: bool| -> Vec<(u64, u64)> {
        let mut timing = Timing::lan();
        timing.pipelined_apply = pipelined;
        let cfg: Configuration = (0..3).map(NodeId).collect();
        let mut net = Lockstep::new((0..3).map(|i| {
            RaftNode::new(
                NodeId(i),
                cfg.clone(),
                timing,
                SimRng::seed_from_u64(seed * 100 + i),
            )
        }));
        stamp_all(&mut net, 1000);
        net.fire(NodeId(0), TimerKind::Election);
        net.deliver_all();
        assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
        for w in 0..writes {
            net.propose(NodeId(0), &[seed as u8, w as u8]);
            net.deliver_all();
            if (drain_mask >> w) & 1 == 1 {
                for id in net.ids() {
                    net.with_node(id, |n, out| n.drain_applies(out));
                }
            }
        }
        // Spread the final commit horizon, then drain everything.
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
        for id in net.ids() {
            net.with_node(id, |n, out| n.drain_applies(out));
        }
        net.ids()
            .iter()
            .map(|&id| {
                let n = net.node(id);
                assert_eq!(n.applied_index(), n.commit_index(), "undrained applies");
                (n.state_digest(), n.commit_index().as_u64())
            })
            .collect()
    };
    let mut rng = SimRng::seed_from_u64(0xD1935);
    for case in 0..12u64 {
        let seed = 1 + rng.gen_range(0..10_000u64);
        let writes = 1 + rng.gen_range(0..10u64);
        let drain_mask = rng.gen_range(0..u64::MAX);
        let inline = run(seed, writes, drain_mask, false);
        let piped = run(seed, writes, drain_mask, true);
        assert_eq!(inline, piped, "case {case}: digests diverged");
    }
}
