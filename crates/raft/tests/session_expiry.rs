//! Classic-Raft session expiry: the same deterministic TTL eviction the
//! Fast Raft engine runs (see `crates/core/tests/session_expiry.rs`),
//! through `RaftNode`'s shared `wire::SessionTable` machinery.

use des::SimRng;
use raft::testkit::Lockstep;
use raft::{RaftNode, Role, Timing};
use wire::{
    ClientOutcome, ClientRequest, Configuration, NodeId, Observation, SessionId, TimerKind,
};

const TTL: u64 = 8;

fn cluster(ttl: u64) -> Lockstep<RaftNode> {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut timing = Timing::lan();
    timing.session_ttl = ttl;
    Lockstep::new((0..3).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(8100 + i),
        )
    }))
}

fn elect(net: &mut Lockstep<RaftNode>, who: NodeId) -> NodeId {
    net.fire(who, TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(who).role(), Role::Leader);
    who
}

fn commit_write(net: &mut Lockstep<RaftNode>, leader: NodeId, gw: NodeId, data: &[u8]) {
    net.propose(gw, data);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // Second round propagates the advanced commit floor to followers.
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
}

#[test]
fn idle_session_evicted_and_stale_retry_answers_retry() {
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    let idle = SessionId::client(1);
    commit_write(&mut net, leader, NodeId(1), b"idle-1");
    commit_write(&mut net, leader, NodeId(1), b"idle-2");
    for i in 0..(TTL + 4) {
        commit_write(&mut net, leader, NodeId(2), format!("busy-{i}").as_bytes());
    }
    // Evicted on every replica, deterministically, digest convergent.
    let d0 = net.node(NodeId(0)).state_digest();
    for id in net.ids() {
        assert!(net.node(id).sessions().get(idle).is_none(), "{id}");
        assert_eq!(net.node(id).state_digest(), d0, "{id}: digest diverged");
    }
    assert!(net
        .observations()
        .iter()
        .any(|(_, o)| matches!(o, Observation::SessionEvicted { session, .. } if *session == idle)));

    // A stale retry of the evicted session's seq 2 answers the terminal
    // SessionExpired — the dedup history is gone and re-placing it could
    // apply twice; a plain Retry would have the client loop forever.
    net.client_request(
        leader,
        ClientRequest::write(idle, 2, bytes::Bytes::from_static(b"idle-2")),
    );
    net.deliver_all();
    let outcomes = net.responses_for(leader, idle, 2);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::SessionExpired)),
        "expected SessionExpired, got {outcomes:?}"
    );
    assert!(!outcomes
        .iter()
        .any(|o| matches!(o, ClientOutcome::Duplicate { .. })));
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn ttl_zero_retains_sessions_forever() {
    let mut net = cluster(0);
    let leader = elect(&mut net, NodeId(0));
    commit_write(&mut net, leader, NodeId(1), b"one");
    for i in 0..30 {
        commit_write(&mut net, leader, NodeId(2), format!("busy-{i}").as_bytes());
    }
    for id in net.ids() {
        assert!(
            net.node(id).sessions().get(SessionId::client(1)).is_some(),
            "{id}: evicted with expiry disabled"
        );
    }
}
