//! Classic-Raft session expiry: the same deterministic TTL eviction the
//! Fast Raft engine runs (see `crates/core/tests/session_expiry.rs`),
//! through `RaftNode`'s shared `wire::SessionTable` machinery.

use des::SimRng;
use raft::testkit::Lockstep;
use raft::{RaftNode, Role, Timing};
use wire::{
    ClientOutcome, ClientRequest, Configuration, NodeId, Observation, SessionId, TimerKind,
};

const TTL: u64 = 8;

fn cluster(ttl: u64) -> Lockstep<RaftNode> {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut timing = Timing::lan();
    timing.session_ttl = ttl;
    Lockstep::new((0..3).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(8100 + i),
        )
    }))
}

fn elect(net: &mut Lockstep<RaftNode>, who: NodeId) -> NodeId {
    net.fire(who, TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(who).role(), Role::Leader);
    who
}

fn commit_write(net: &mut Lockstep<RaftNode>, leader: NodeId, gw: NodeId, data: &[u8]) {
    net.propose(gw, data);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // Second round propagates the advanced commit floor to followers.
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
}

#[test]
fn idle_session_evicted_and_stale_retry_answers_retry() {
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    let idle = SessionId::client(1);
    commit_write(&mut net, leader, NodeId(1), b"idle-1");
    commit_write(&mut net, leader, NodeId(1), b"idle-2");
    for i in 0..(TTL + 4) {
        commit_write(&mut net, leader, NodeId(2), format!("busy-{i}").as_bytes());
    }
    // Evicted on every replica, deterministically, digest convergent.
    let d0 = net.node(NodeId(0)).state_digest();
    for id in net.ids() {
        assert!(net.node(id).sessions().get(idle).is_none(), "{id}");
        assert_eq!(net.node(id).state_digest(), d0, "{id}: digest diverged");
    }
    assert!(net
        .observations()
        .iter()
        .any(|(_, o)| matches!(o, Observation::SessionEvicted { session, .. } if *session == idle)));

    // A stale retry of the evicted session's seq 2 answers the terminal
    // SessionExpired — the dedup history is gone and re-placing it could
    // apply twice; a plain Retry would have the client loop forever.
    net.client_request(
        leader,
        ClientRequest::write(idle, 2, bytes::Bytes::from_static(b"idle-2")),
    );
    net.deliver_all();
    let outcomes = net.responses_for(leader, idle, 2);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::SessionExpired)),
        "expected SessionExpired, got {outcomes:?}"
    );
    assert!(!outcomes
        .iter()
        .any(|o| matches!(o, ClientOutcome::Duplicate { .. })));
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn fresh_leader_lagging_table_never_terminally_refuses_live_session() {
    // The false-positive race the currency gate closes: a fresh leader's
    // applied table *lags* until an entry of its own term commits, so a
    // live session whose writes are committed-but-not-applied-here reads
    // as "expired" (`seq > 1`, session untracked). Terminally refusing
    // then would tell the client "placed nowhere" while the placement
    // survives in the log and later applies — the client would reopen a
    // session, resubmit, and the op would apply twice. The door must
    // answer the non-terminal Retry until the table is provably current.
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    let live = SessionId::client(1);
    // (live, 1) commits and is acked at the old leader; the followers hold
    // the entry but not the commit floor (floor propagation is one
    // heartbeat behind), so their tables never see the session.
    net.client_request(
        leader,
        ClientRequest::write(live, 1, bytes::Bytes::from_static(b"w1")),
    );
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    assert!(net
        .responses_for(leader, live, 1)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. })));
    // The client's next op, (live, 2), reaches the old leader's log but is
    // never dispatched (heartbeat-gated) — in flight, unacked.
    net.client_request(
        leader,
        ClientRequest::write(live, 2, bytes::Bytes::from_static(b"w2")),
    );
    net.deliver_all();
    assert!(
        net.node(NodeId(1)).sessions().get(live).is_none(),
        "precondition: the follower's table must lag the commit"
    );
    // Elect node 1 delivering only the vote traffic: stop as soon as it
    // turns Leader, before its own-term no-op round catches its table up.
    net.fire(NodeId(1), TimerKind::Election);
    while net.node(NodeId(1)).role() != Role::Leader {
        assert!(net.deliver_one(), "election wedged");
    }
    assert!(net.node(NodeId(1)).sessions().get(live).is_none());
    // The client times out on (live, 2) and retries it at the new leader,
    // whose lagging table reads the live session as "expired".
    net.client_request(
        NodeId(1),
        ClientRequest::write(live, 2, bytes::Bytes::from_static(b"w2")),
    );
    let early = net.responses_for(NodeId(1), live, 2);
    assert!(
        !early
            .iter()
            .any(|o| matches!(o, ClientOutcome::SessionExpired)),
        "lagging fresh leader terminally refused a live session: {early:?}"
    );
    assert!(
        early.iter().any(|o| matches!(o, ClientOutcome::Retry)),
        "expected the non-terminal Retry, got {early:?}"
    );
    // Let the new leader commit its no-op and catch up its applied state,
    // then resubmit: the table now knows the session and the op commits.
    net.deliver_all();
    for _ in 0..2 {
        net.fire(NodeId(1), TimerKind::Heartbeat);
        net.deliver_all();
    }
    net.client_request(
        NodeId(1),
        ClientRequest::write(live, 2, bytes::Bytes::from_static(b"w2")),
    );
    net.deliver_all();
    for _ in 0..2 {
        net.fire(NodeId(1), TimerKind::Heartbeat);
        net.deliver_all();
    }
    let outcomes = net.responses_for(NodeId(1), live, 2);
    assert!(
        !outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::SessionExpired)),
        "live session must never be told SessionExpired: {outcomes:?}"
    );
    assert!(
        outcomes.iter().any(|o| matches!(
            o,
            ClientOutcome::Committed { .. } | ClientOutcome::Duplicate { .. }
        )),
        "caught-up leader must accept or dedup the retry, got {outcomes:?}"
    );
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn ttl_zero_retains_sessions_forever() {
    let mut net = cluster(0);
    let leader = elect(&mut net, NodeId(0));
    commit_write(&mut net, leader, NodeId(1), b"one");
    for i in 0..30 {
        commit_write(&mut net, leader, NodeId(2), format!("busy-{i}").as_bytes());
    }
    for id in net.ids() {
        assert!(
            net.node(id).sessions().get(SessionId::client(1)).is_some(),
            "{id}: evicted with expiry disabled"
        );
    }
}
