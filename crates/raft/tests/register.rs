//! Explicit session registration ([`wire::ClientOp::Register`]): server-
//! assigned ids, idempotent re-registration, redirect at followers, and —
//! the point of the op — the closed seq-1 expiry window: a registered
//! session's first *data* write is seq 2, so a post-eviction retry is
//! always detectably stale and never silently re-applied.

use des::SimRng;
use raft::testkit::Lockstep;
use raft::{RaftNode, Role, Timing};
use wire::{
    ClientOutcome, ClientRequest, Configuration, LogIndex, NodeId, Observation, SessionId,
    TimerKind,
};

const TTL: u64 = 8;

fn cluster(ttl: u64) -> Lockstep<RaftNode> {
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let mut timing = Timing::lan();
    timing.session_ttl = ttl;
    Lockstep::new((0..3).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            timing,
            SimRng::seed_from_u64(8400 + i),
        )
    }))
}

fn elect(net: &mut Lockstep<RaftNode>, who: NodeId) -> NodeId {
    net.fire(who, TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(who).role(), Role::Leader);
    who
}

fn commit_round(net: &mut Lockstep<RaftNode>, leader: NodeId) {
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
}

/// Every `Registered` outcome observed at `at`, in order.
fn registered_at(net: &Lockstep<RaftNode>, at: NodeId) -> Vec<(SessionId, LogIndex)> {
    net.observations()
        .iter()
        .filter_map(|(n, o)| match o {
            Observation::ClientResponse {
                outcome: ClientOutcome::Registered { session, index },
                ..
            } if *n == at => Some((*session, *index)),
            _ => None,
        })
        .collect()
}

#[test]
fn unassigned_register_returns_server_assigned_id() {
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    net.client_request(leader, ClientRequest::register(SessionId::UNASSIGNED));
    net.deliver_all();
    commit_round(&mut net, leader);
    let regs = registered_at(&net, leader);
    assert_eq!(regs.len(), 1, "exactly one registration: {regs:?}");
    let (session, _) = regs[0];
    assert!(!session.is_unassigned(), "server never assigned an id");
    assert_eq!(
        session.as_u64() >> 63,
        1,
        "assigned ids live in the top-bit partition, got {session}"
    );
    // The registration consumed the session's seq 1 on every replica.
    assert!(net
        .observations()
        .iter()
        .any(|(_, o)| matches!(o, Observation::SessionApplied { session: s, seq: 1, .. } if *s == session)));
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn reregister_is_idempotent_at_the_same_index() {
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    net.client_request(leader, ClientRequest::register(SessionId::UNASSIGNED));
    net.deliver_all();
    commit_round(&mut net, leader);
    let (session, index) = registered_at(&net, leader)[0];
    // The client retries with the id it was handed (e.g. the first ack was
    // lost): answered from the dedup table, same placement, no new entry.
    net.client_request(leader, ClientRequest::register(session));
    net.deliver_all();
    commit_round(&mut net, leader);
    let regs = registered_at(&net, leader);
    assert_eq!(regs.len(), 2, "retry unanswered: {regs:?}");
    assert_eq!(regs[1], (session, index), "retry moved the registration");
    let applies = net
        .observations()
        .iter()
        .filter(|(_, o)| matches!(o, Observation::SessionApplied { session: s, .. } if *s == session))
        .count();
    assert_eq!(applies, 3, "one apply per replica, not per attempt");
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn register_at_follower_redirects_to_leader() {
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    // A heartbeat teaches the followers who leads.
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.client_request(NodeId(1), ClientRequest::register(SessionId::UNASSIGNED));
    net.deliver_all();
    let redirects: Vec<_> = net
        .observations()
        .iter()
        .filter_map(|(n, o)| match o {
            Observation::ClientResponse {
                outcome: ClientOutcome::Redirect { leader_hint },
                ..
            } if *n == NodeId(1) => Some(*leader_hint),
            _ => None,
        })
        .collect();
    assert_eq!(
        redirects,
        vec![Some(leader)],
        "registration is leader-only: the follower must hand back a hint"
    );
    assert!(
        registered_at(&net, NodeId(1)).is_empty(),
        "a follower completed a registration"
    );
    net.assert_safety();
}

#[test]
fn registered_session_expiry_is_terminal_never_replayed() {
    // The window Register closes: an *unregistered* session whose seq-1
    // write outlives its eviction is indistinguishable from a new session
    // and would re-apply. Registration consumes seq 1 with a no-value op,
    // so every post-eviction data retry has seq > 1 and is detectably
    // stale.
    let mut net = cluster(TTL);
    let leader = elect(&mut net, NodeId(0));
    net.client_request(leader, ClientRequest::register(SessionId::UNASSIGNED));
    net.deliver_all();
    commit_round(&mut net, leader);
    let (session, _) = registered_at(&net, leader)[0];
    // First data write of the registered session: seq 2.
    net.client_request(
        leader,
        ClientRequest::write(session, 2, bytes::Bytes::from_static(b"w2")),
    );
    net.deliver_all();
    commit_round(&mut net, leader);
    assert!(net
        .responses_for(leader, session, 2)
        .iter()
        .any(|o| matches!(o, ClientOutcome::Committed { .. })));
    // Busy traffic idles the session past the TTL.
    for i in 0..(TTL + 4) {
        net.propose(NodeId(2), format!("busy-{i}").as_bytes());
        net.deliver_all();
        commit_round(&mut net, leader);
    }
    assert!(
        net.node(leader).sessions().get(session).is_none(),
        "precondition: the registered session must be evicted"
    );
    // Retries of *any* of its writes — including the first one — answer
    // the terminal SessionExpired instead of re-applying.
    for seq in [2u64, 3] {
        net.client_request(
            leader,
            ClientRequest::write(session, seq, bytes::Bytes::from_static(b"retry")),
        );
        net.deliver_all();
        commit_round(&mut net, leader);
        let outcomes = net.responses_for(leader, session, seq);
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o, ClientOutcome::SessionExpired)),
            "seq {seq}: expected SessionExpired, got {outcomes:?}"
        );
    }
    net.assert_exactly_once();
    net.assert_safety();
}
