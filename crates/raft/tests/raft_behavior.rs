//! Scenario tests for classic Raft driven through the lockstep testkit.

use des::SimRng;
use raft::testkit::Lockstep;
use raft::{RaftNode, Role, Timing};
use wire::{
    Configuration, ConsensusProtocol, LogIndex, NodeId, Observation, Payload, TimerKind,
};

fn cluster(n: u64) -> Lockstep<RaftNode> {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    Lockstep::new((0..n).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            Timing::lan(),
            SimRng::seed_from_u64(1000 + i),
        )
    }))
}

/// Elects node 0 as leader and settles the initial no-op.
fn elect_leader(net: &mut Lockstep<RaftNode>) -> NodeId {
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    // Heartbeat once so the no-op commits everywhere.
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    NodeId(0)
}

#[test]
fn single_node_cluster_self_elects_and_commits() {
    let mut net = cluster(1);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    net.propose(NodeId(0), b"solo");
    net.deliver_all();
    // Commit is ack-driven; a single node acks implicitly via match_index,
    // which advances on append. Trigger evaluation via a heartbeat ack loop.
    net.fire(NodeId(0), TimerKind::Heartbeat);
    net.deliver_all();
    let commits = net.commits(NodeId(0));
    assert!(
        commits.iter().any(|c| matches!(c.entry.payload, Payload::Write { .. })),
        "data entry should commit on a single-node cluster"
    );
    net.assert_safety();
}

#[test]
fn three_nodes_elect_exactly_one_leader() {
    let mut net = cluster(3);
    net.fire(NodeId(0), TimerKind::Election);
    net.deliver_all();
    let leaders = net.leaders_by(|n| n.role() == Role::Leader);
    assert_eq!(leaders, vec![NodeId(0)]);
    assert!(net
        .ids()
        .iter()
        .all(|&id| net.node(id).current_term() == net.node(NodeId(0)).current_term()));
}

#[test]
fn proposal_commits_on_all_nodes_after_heartbeats() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    net.propose(leader, b"hello");
    net.deliver_all();
    // Entry travels on the next heartbeat; commit index propagates on the one
    // after that.
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    for id in net.ids() {
        assert!(
            net.commits(id)
                .iter()
                .any(|c| matches!(c.entry.payload, Payload::Write { .. })),
            "{id} missing the data commit"
        );
    }
    net.assert_safety();
}

#[test]
fn proposer_observes_commit_notification() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    // Propose at a follower: it must reach the leader and come back.
    let pid = net.propose(NodeId(1), b"via-follower");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let committed = net
        .responses_for(NodeId(1), pid.0, pid.1)
        .iter()
        .any(|o| matches!(o, wire::ClientOutcome::Committed { .. }));
    assert!(committed, "proposer never learned of its commit");
    assert_eq!(net.node(NodeId(1)).pending_proposals(), 0);
}

#[test]
fn follower_without_leader_hint_discovers_leader() {
    let mut net = cluster(3);
    elect_leader(&mut net);
    // Node 2 now knows the leader from heartbeats; clear simulation: a fresh
    // proposal from node 2 is sent directly to the leader.
    assert_eq!(net.node(NodeId(2)).leader_hint(), Some(NodeId(0)));
}

#[test]
fn stale_leader_steps_down_on_higher_term() {
    let mut net = cluster(3);
    let old = elect_leader(&mut net);
    // Partition the old leader: deliverable messages only among {1,2}.
    net.set_link_filter(|from, to| from != NodeId(0) && to != NodeId(0));
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).role(), Role::Leader);
    // Heal; old leader hears the new term via the new leader's heartbeat.
    net.set_link_filter(|_, _| true);
    net.fire(NodeId(1), TimerKind::Heartbeat);
    net.deliver_all();
    assert_eq!(net.node(old).role(), Role::Follower);
    assert_eq!(
        net.node(old).current_term(),
        net.node(NodeId(1)).current_term()
    );
    net.assert_safety();
}

#[test]
fn divergent_follower_log_is_overwritten() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    // Cut node 2 off; commit entries among {0,1}.
    net.set_link_filter(|from, to| from != NodeId(2) && to != NodeId(2));
    net.propose(leader, b"a");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // Meanwhile node 2 becomes candidate in vain (its term rises).
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(2)).role(), Role::Candidate);
    // Heal. The leader's next heartbeats bring node 2 back in line. The
    // leader first steps down? No — candidate term is higher, so the leader
    // will learn it via the rejection reply and a re-election happens. Run
    // the full exchange and let node 0 win again (it has the longer log).
    net.set_link_filter(|_, _| true);
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // Whoever leads now must have the committed entry; node 2 eventually
    // converges once a leader heartbeats twice.
    let now_leader = net
        .leaders_by(|n| n.role() == Role::Leader)
        .first()
        .copied();
    if let Some(l) = now_leader {
        net.fire(l, TimerKind::Heartbeat);
        net.deliver_all();
        net.fire(l, TimerKind::Heartbeat);
        net.deliver_all();
    } else {
        // Term collision: let node 0 retry the election with its longer log.
        net.fire(NodeId(0), TimerKind::Election);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
        net.fire(NodeId(0), TimerKind::Heartbeat);
        net.deliver_all();
    }
    net.assert_safety();
}

#[test]
fn candidate_with_stale_log_is_rejected() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    net.propose(leader, b"x");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // Isolate node 2 before it sees anything further; commit one more entry.
    net.set_link_filter(|from, to| from != NodeId(2) && to != NodeId(2));
    net.propose(leader, b"y");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // Crash the leader entirely, heal node 2, and let node 2 (stale log)
    // race node 1 (fresh log).
    net.crash(leader);
    net.set_link_filter(move |from, to| from != leader && to != leader);
    net.fire(NodeId(2), TimerKind::Election);
    net.deliver_all();
    // Node 1 must refuse node 2 (log not up-to-date).
    assert_ne!(net.node(NodeId(2)).role(), Role::Leader);
    // Node 1 can win.
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).role(), Role::Leader);
    net.assert_safety();
}

#[test]
fn commit_survives_leader_crash_and_reelection() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    net.propose(leader, b"durable");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let committed_at: Vec<LogIndex> = net
        .commits(NodeId(1))
        .iter()
        .filter(|c| matches!(c.entry.payload, Payload::Write { .. }))
        .map(|c| c.index)
        .collect();
    assert_eq!(committed_at.len(), 1);
    net.crash(leader);
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    assert_eq!(net.node(NodeId(1)).role(), Role::Leader);
    // The committed entry must still be in the new leader's log at the same
    // index.
    let idx = committed_at[0];
    let entry = net.node(NodeId(1)).log().get(idx).expect("entry survived");
    assert!(matches!(entry.payload, Payload::Write { .. }));
    net.assert_safety();
}

#[test]
fn crash_recovery_from_stable_storage() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    net.propose(leader, b"persisted");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // Crash follower 2 and recover it from disk.
    net.crash(NodeId(2));
    let stable = net.disk().read(NodeId(2)).expect("disk state").clone();
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let recovered = RaftNode::recover(
        NodeId(2),
        &stable,
        cfg,
        Timing::lan(),
        SimRng::seed_from_u64(77),
    );
    // Recovered node keeps its term and log but no commit index (volatile).
    assert_eq!(recovered.current_term(), net.node(leader).current_term());
    assert_eq!(recovered.commit_index(), LogIndex::ZERO);
    net.restart(recovered);
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // It relearns the commit index from the leader.
    assert!(net.node(NodeId(2)).commit_index() >= LogIndex(1));
    net.assert_safety();
}

#[test]
fn reconfiguration_adds_a_member() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    // New node 3 starts as a learner (admin-driven in classic Raft).
    let cfg: Configuration = (0..3).map(NodeId).collect();
    let grown = cfg.with_member(NodeId(3));
    let newcomer = RaftNode::new(
        NodeId(3),
        grown.clone(),
        Timing::lan(),
        SimRng::seed_from_u64(55),
    );
    net.restart(newcomer);
    net.node_mut(leader).admin_add_learner(NodeId(3)).unwrap();
    // Catch the learner up.
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // Propose the new configuration.
    net.with_node(leader, |n, out| {
        n.admin_propose_config(grown.clone(), out).unwrap();
    });
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    assert_eq!(net.node(leader).config().len(), 4);
    // The new member participates: a further proposal still commits.
    net.propose(leader, b"with-4");
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    assert!(net
        .commits(NodeId(3))
        .iter()
        .any(|c| matches!(c.entry.payload, Payload::Write { .. })));
    net.assert_safety();
}

#[test]
fn non_leader_rejects_admin_operations() {
    let mut net = cluster(3);
    elect_leader(&mut net);
    let err = net.node_mut(NodeId(1)).admin_add_learner(NodeId(9));
    assert!(err.is_err());
    assert_eq!(err.unwrap_err().leader_hint, Some(NodeId(0)));
}

#[test]
fn duplicate_proposal_is_committed_once() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    let pid = net.propose(NodeId(1), b"dup");
    net.deliver_all();
    // Proposer retries (e.g. timeout) — same id reaches the leader twice.
    net.fire(NodeId(1), TimerKind::ProposalRetry);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    let data_commits = net
        .commits(NodeId(0))
        .iter()
        .filter(|c| c.entry.payload.session_key() == Some(pid))
        .count();
    assert_eq!(data_commits, 1, "duplicate proposal committed twice");
    net.assert_exactly_once();
    net.assert_safety();
}

#[test]
fn messages_from_non_members_are_ignored() {
    let mut net = cluster(3);
    elect_leader(&mut net);
    // A rogue node 9 (not in the config) sends a vote request by having a
    // crafted node object — simulate by injecting via a node not in config:
    // simplest check: the observation stream flags ignored messages when a
    // removed node talks. Here we verify the config filter exists by
    // checking RequestVote from non-member candidate id.
    // (Direct injection path: node 1 processes a message "from" node 9.)
    net.with_node(NodeId(1), |n, out| {
        n.on_message(
            NodeId(9),
            raft::RaftMessage::RequestVoteReply {
                term: wire::Term(99),
                granted: true,
            },
            out,
        );
    });
    assert!(net
        .observations()
        .iter()
        .any(|(n, o)| *n == NodeId(1)
            && matches!(o, Observation::MessageIgnored { reason } if reason.contains("configuration"))));
    // Term must NOT have jumped to 99.
    assert!(net.node(NodeId(1)).current_term() < wire::Term(99));
}

#[test]
fn split_vote_resolves_on_retry() {
    let mut net = cluster(5);
    // Two candidates start simultaneously; votes split.
    net.fire(NodeId(0), TimerKind::Election);
    net.fire(NodeId(1), TimerKind::Election);
    net.deliver_all();
    let leaders = net.leaders_by(|n| n.role() == Role::Leader);
    assert!(leaders.len() <= 1, "two leaders in one term: {leaders:?}");
    if leaders.is_empty() {
        // Retry: node 0 times out again with a fresh term.
        net.fire(NodeId(0), TimerKind::Election);
        net.deliver_all();
        assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    }
    net.assert_safety();
}

// ---------------------------------------------------------------------
// Snapshot + log compaction
// ---------------------------------------------------------------------

fn snappy_timing(threshold: u64) -> Timing {
    Timing {
        snapshot_threshold: threshold,
        ..Timing::lan()
    }
}

fn snappy_cluster(n: u64, threshold: u64) -> (Lockstep<RaftNode>, Configuration) {
    let cfg: Configuration = (0..n).map(NodeId).collect();
    let net = Lockstep::new((0..n).map(|i| {
        RaftNode::new(
            NodeId(i),
            cfg.clone(),
            snappy_timing(threshold),
            SimRng::seed_from_u64(1000 + i),
        )
    }));
    (net, cfg)
}

/// Commits `count` data entries through the leader, heartbeating as needed.
fn pump_commits(net: &mut Lockstep<RaftNode>, leader: NodeId, count: usize) {
    for i in 0..count {
        net.propose(leader, format!("v{i}").as_bytes());
        net.deliver_all();
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
    }
    // One extra beat so the last commit index reaches every follower.
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
}

#[test]
fn all_sites_compact_past_the_threshold() {
    let (mut net, _) = snappy_cluster(3, 8);
    let leader = elect_leader(&mut net);
    pump_commits(&mut net, leader, 20);
    for id in net.ids() {
        let node = net.node(id);
        assert!(
            node.log().compacted_through() > LogIndex::ZERO,
            "{id} never compacted"
        );
        assert!(
            node.log().len() as u64 <= 8 + 1,
            "{id} retains {} entries past the threshold",
            node.log().len()
        );
        assert!(node.snapshot().is_some(), "{id} has no snapshot");
    }
    // Everyone committed the same sequence: digests agree.
    let d0 = net.node(NodeId(0)).state_digest();
    assert!(net.ids().iter().all(|&id| net.node(id).state_digest() == d0));
    net.assert_safety();
}

#[test]
fn crashed_follower_catches_up_via_snapshot() {
    let (mut net, cfg) = snappy_cluster(3, 8);
    let leader = elect_leader(&mut net);
    pump_commits(&mut net, leader, 3);
    net.crash(NodeId(2));
    // Drive the log far past the snapshot threshold while node 2 is away.
    pump_commits(&mut net, leader, 24);
    assert!(net.node(leader).log().compacted_through() > LogIndex(3));
    // Node 2 restarts from its (pre-compaction) stable state.
    let stable = net.disk().read(NodeId(2)).cloned().unwrap_or_default();
    net.restart(RaftNode::recover(
        NodeId(2),
        &stable,
        cfg,
        snappy_timing(8),
        SimRng::seed_from_u64(99),
    ));
    // Heartbeats rewind nextIndex below the horizon -> snapshot transfer.
    for _ in 0..4 {
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
    }
    let installed = net
        .observations()
        .iter()
        .any(|(n, o)| *n == NodeId(2) && matches!(o, Observation::SnapshotInstalled { .. }));
    assert!(installed, "rejoiner should install a snapshot");
    assert_eq!(
        net.node(NodeId(2)).commit_index(),
        net.node(leader).commit_index(),
        "rejoiner should reach the leader's commit index"
    );
    assert_eq!(
        net.node(NodeId(2)).state_digest(),
        net.node(leader).state_digest(),
        "snapshot + suffix must reproduce the leader's state"
    );
    net.assert_safety();
}

#[test]
fn recovery_from_snapshot_plus_suffix_matches_full_log() {
    let (mut net, cfg) = snappy_cluster(3, 8);
    let leader = elect_leader(&mut net);
    pump_commits(&mut net, leader, 20);
    // The leader's stable state now holds snapshot + suffix. Recover from it
    // and compare against the live (never-crashed) node.
    let stable = net.disk().read(leader).cloned().unwrap();
    assert!(stable.global.snapshot.is_some());
    let recovered = RaftNode::recover(
        leader,
        &stable,
        cfg,
        snappy_timing(8),
        SimRng::seed_from_u64(7),
    );
    let live = net.node(leader);
    assert_eq!(recovered.log(), live.log(), "retained suffix must match");
    assert_eq!(
        recovered.log().compacted_through(),
        live.log().compacted_through()
    );
    assert_eq!(recovered.config(), live.config());
    // The recovered commit floor is the snapshot horizon; replaying the
    // retained suffix from there reproduces the digest (checked in the
    // crashed_follower test end-to-end).
    assert_eq!(recovered.commit_index(), live.log().compacted_through());
}

#[test]
fn recovered_gateway_never_reuses_proposal_ids() {
    let mut net = cluster(3);
    let leader = elect_leader(&mut net);
    // Several writes gatewayed at follower 2 commit before the crash,
    // consuming proposal-sequence numbers at that gateway.
    for _ in 0..3 {
        net.propose(NodeId(2), b"pre-crash");
        net.deliver_all();
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
    }
    net.crash(NodeId(2));
    let stable = net.disk().read(NodeId(2)).expect("disk state").clone();
    let cfg: Configuration = (0..3).map(NodeId).collect();
    net.restart(RaftNode::recover(
        NodeId(2),
        &stable,
        cfg,
        Timing::lan(),
        SimRng::seed_from_u64(78),
    ));
    net.fire(leader, TimerKind::Heartbeat);
    net.deliver_all();
    // A fresh write from the recovered gateway. Without the persisted
    // sequence reservation its proposal counter restarts at 0 and re-mints
    // a pre-crash EntryId: the leader's id dedup then answers with the OLD
    // entry's commit and the new write silently never enters the log.
    let key = net.propose(NodeId(2), b"post-crash");
    net.deliver_all();
    for _ in 0..2 {
        net.fire(leader, TimerKind::Heartbeat);
        net.deliver_all();
    }
    let committed = net
        .responses_for(NodeId(2), key.0, key.1)
        .iter()
        .any(|o| matches!(o, wire::ClientOutcome::Committed { .. }));
    assert!(committed, "post-crash write never answered");
    assert!(
        net.commits(leader)
            .iter()
            .any(|c| c.entry.payload.session_key() == Some(key)),
        "post-crash write was swallowed by proposal-id dedup"
    );
    net.assert_exactly_once();
    net.assert_safety();
}
