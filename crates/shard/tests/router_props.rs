//! Property tests for the shard router: key → group assignment is
//! **total** (every hash maps to a group), **deterministic** (a pure
//! function of the op history), and **stable** (an applied op changes
//! assignments only inside the range it names; a rejected op changes
//! nothing).

use proptest::prelude::*;
use shard::{key_hash, ReconfigOp, ShardRouter, RECONFIG_MAGIC};
use wire::GroupId;

/// Raw op material; concretized against the live table so most generated
/// ops validate while rejections still occur (empty splits, no-op moves,
/// colliding group ids).
#[derive(Clone, Debug)]
enum OpSeed {
    Split { point: u64 },
    Move { which: u64, to: u32 },
}

fn arb_seeds() -> impl Strategy<Value = (u32, Vec<OpSeed>)> {
    (
        1u32..=8,
        proptest::collection::vec(
            prop_oneof![
                any::<u64>().prop_map(|point| OpSeed::Split { point }),
                (any::<u64>(), 0u32..16).prop_map(|(which, to)| OpSeed::Move { which, to }),
            ],
            0..24,
        ),
    )
}

/// Turns a seed into a concrete op against the current table: splits name
/// the true owner of the split point and mint a fresh group id; moves pick
/// an existing boundary (the target may collide or no-op — those reject).
fn concretize(router: &ShardRouter, seed: &OpSeed, fresh: &mut u32) -> ReconfigOp {
    match *seed {
        OpSeed::Split { point } => {
            let op = ReconfigOp::SplitGroup {
                group: router.group_for_hash(point),
                at: point,
                new_group: GroupId(*fresh),
            };
            *fresh += 1;
            op
        }
        OpSeed::Move { which, to } => {
            let ranges = router.ranges();
            let (start, _) = ranges[(which % ranges.len() as u64) as usize];
            ReconfigOp::MoveRange {
                start,
                to: GroupId(to),
            }
        }
    }
}

/// Hash points probed for stability: every boundary and its neighbours
/// (the edges an off-by-one would clip) plus a deterministic scatter.
fn probes(router: &ShardRouter) -> Vec<u64> {
    let mut ps = Vec::new();
    for &(start, _) in router.ranges() {
        ps.extend([start, start.wrapping_sub(1), start.saturating_add(1)]);
    }
    for i in 0..64u64 {
        ps.push(key_hash(&i.to_be_bytes()));
    }
    ps
}

proptest! {
    /// Totality + determinism: the table invariant (sorted strictly
    /// increasing, first start 0) survives any op sequence, every probe
    /// maps consistently, and replaying the ops rebuilds the identical
    /// table.
    #[test]
    fn assignment_total_and_deterministic((groups, seeds) in arb_seeds()) {
        let mut router = ShardRouter::uniform(groups);
        let mut fresh = groups;
        let mut ops = Vec::new();
        for seed in &seeds {
            let op = concretize(&router, seed, &mut fresh);
            let _ = router.apply(&op);
            ops.push(op);

            prop_assert_eq!(router.ranges()[0].0, 0);
            prop_assert!(router.ranges().windows(2).all(|w| w[0].0 < w[1].0));
            for h in probes(&router) {
                prop_assert_eq!(router.group_for_hash(h), router.group_for_hash(h));
                prop_assert_eq!(
                    router.assign(&h.to_be_bytes()),
                    router.group_for_hash(key_hash(&h.to_be_bytes()))
                );
            }
        }
        let mut replay = ShardRouter::uniform(groups);
        for op in &ops {
            let _ = replay.apply(op);
        }
        prop_assert_eq!(replay, router);
    }

    /// Stability: an applied op moves exactly the hashes inside the range
    /// it names (to the op's target group) and no others; a rejected op
    /// leaves table and epoch untouched.
    #[test]
    fn ops_touch_only_their_range((groups, seeds) in arb_seeds()) {
        let mut router = ShardRouter::uniform(groups);
        let mut fresh = groups;
        for seed in &seeds {
            let op = concretize(&router, seed, &mut fresh);
            let before = router.clone();
            let points = probes(&before);
            let prior: Vec<GroupId> =
                points.iter().map(|&h| before.group_for_hash(h)).collect();
            match router.apply(&op) {
                Ok(()) => {
                    // The affected interval, computed under the old table.
                    let (lo, hi, new_owner) = match op {
                        ReconfigOp::SplitGroup { at, new_group, .. } => {
                            let i = before
                                .ranges()
                                .partition_point(|&(s, _)| s <= at) - 1;
                            (at, before.ranges().get(i + 1).map(|&(s, _)| s), new_group)
                        }
                        ReconfigOp::MoveRange { start, to } => {
                            let i = before
                                .ranges()
                                .iter()
                                .position(|&(s, _)| s == start)
                                .expect("applied move names a boundary");
                            (start, before.ranges().get(i + 1).map(|&(s, _)| s), to)
                        }
                    };
                    let inside = |h: u64| h >= lo && hi.is_none_or(|end| h < end);
                    for (&h, &was) in points.iter().zip(&prior) {
                        let now = router.group_for_hash(h);
                        if inside(h) {
                            prop_assert_eq!(
                                now, new_owner,
                                "hash {} inside [{}, {:?}) kept old owner", h, lo, hi
                            );
                        } else {
                            prop_assert_eq!(
                                now, was,
                                "hash {} outside [{}, {:?}) changed owner", h, lo, hi
                            );
                        }
                    }
                    prop_assert_eq!(router.epoch(), before.epoch() + 1);
                }
                Err(_) => prop_assert_eq!(&router, &before),
            }
        }
    }

    /// Reconfig payloads round-trip through the wire encoding, and
    /// arbitrary non-magic bytes never decode as an op.
    #[test]
    fn payload_roundtrip_and_magic_gate(
        group in any::<u32>(), at in any::<u64>(), new in any::<u32>(),
        start in any::<u64>(), to in any::<u32>(),
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        for op in [
            ReconfigOp::SplitGroup {
                group: GroupId(group),
                at,
                new_group: GroupId(new),
            },
            ReconfigOp::MoveRange { start, to: GroupId(to) },
        ] {
            prop_assert_eq!(ReconfigOp::decode_payload(&op.encode_payload()), Some(op));
        }
        if !junk.starts_with(&RECONFIG_MAGIC[..]) {
            prop_assert_eq!(ReconfigOp::decode_payload(&junk), None);
        }
    }
}
