//! Integration tests for the sharded fabric: cross-group session
//! isolation, end-to-end rebalance through the owning group's log, and
//! hibernation.

use des::{SimDuration, SimRng, SimTime};
use raft::testkit::Lockstep;
use raft::{RaftNode, Role, Timing};
use shard::{raft_factory, ReconfigOp, ShardConfig, ShardRunner, WorkloadSpec};
use wire::{
    ClientOutcome, ClientRequest, Configuration, GroupId, NodeId, SessionId, TimerKind,
};

fn small_cfg(groups: u32, clients: usize, idle_after: SimDuration) -> ShardConfig {
    ShardConfig {
        procs: 3,
        groups,
        seed: 42,
        idle_after,
        workload: WorkloadSpec {
            clients,
            keys: 64,
            zipf_theta: 0.0, // uniform: touch every group
            start_at: SimTime::from_secs(2),
            ..WorkloadSpec::default()
        },
    }
}

fn leader_of(runner: &ShardRunner<RaftNode>, group: GroupId) -> Option<&RaftNode> {
    (0..3)
        .filter_map(|p| runner.engine(group, NodeId(p)))
        .find(|e| e.role() == Role::Leader)
}

/// One client, several groups, one `SessionId`: the client's sequence
/// numbers are scoped **per group**, so every group that completed `n` of
/// its ops holds a dense `1..=n` run in its own session table. A client
/// keeping one global counter (or groups sharing a dedup window) would
/// leave gaps and stall the floor at 0.
#[test]
fn same_session_is_independent_per_group() {
    let cfg = small_cfg(4, 1, SimDuration::from_secs(30));
    let mut runner = ShardRunner::new(cfg, Vec::new(), raft_factory(Timing::lan()));
    runner.run_until(SimTime::from_secs(14));

    let m = runner.metrics().clone();
    assert!(runner.violations().is_empty(), "{:?}", runner.violations());
    assert_eq!(
        m.completed_total,
        m.per_group_completed.values().sum::<u64>(),
        "per-group counts must conserve the total"
    );
    let active: Vec<_> = m
        .per_group_completed
        .iter()
        .filter(|&(_, &n)| n > 0)
        .collect();
    assert!(
        active.len() >= 2,
        "uniform keys should reach several groups: {:?}",
        m.per_group_completed
    );

    let session = SessionId::client(1);
    for (&g, &n) in &active {
        let leader = leader_of(&runner, GroupId(g)).expect("settled group has a leader");
        let slot = leader
            .sessions()
            .get(session)
            .expect("completed ops leave a session slot");
        // Dense per-group numbering: all of 1..=n applied here. The op in
        // flight at the horizon may add one more.
        assert!(
            slot.floor_seq >= n,
            "group {g}: floor {} < completed {n} — sequence numbers leaked \
             across groups",
            slot.floor_seq
        );
        assert!(
            slot.last_seq() <= n + 1,
            "group {g}: applied seq {} beyond this group's {n} ops",
            slot.last_seq()
        );
    }
}

/// Session expiry is per group log: evicting an idle session from one
/// group's table (its log advanced past the TTL) must not disturb the
/// same session's dedup history in another group.
#[test]
fn eviction_in_one_group_leaves_others_untouched() {
    let ttl = 8;
    let cluster = |salt: u64| {
        let cfg: Configuration = (0..3).map(NodeId).collect();
        let mut timing = Timing::lan();
        timing.session_ttl = ttl;
        Lockstep::new((0..3).map(|i| {
            RaftNode::new(
                NodeId(i),
                cfg.clone(),
                timing,
                SimRng::seed_from_u64(salt + i),
            )
        }))
    };
    let commit = |net: &mut Lockstep<RaftNode>, session: SessionId, seq: u64, data: &[u8]| {
        net.client_request(
            NodeId(0),
            ClientRequest::write(session, seq, bytes::Bytes::copy_from_slice(data)),
        );
        net.deliver_all();
        for _ in 0..2 {
            net.fire(NodeId(0), TimerKind::Heartbeat);
            net.deliver_all();
        }
    };

    // Two groups = two independent consensus instances.
    let mut a = cluster(9_000);
    let mut b = cluster(9_100);
    for net in [&mut a, &mut b] {
        net.fire(NodeId(0), TimerKind::Election);
        net.deliver_all();
        assert_eq!(net.node(NodeId(0)).role(), Role::Leader);
    }

    let shared = SessionId::client(1);
    let busy = SessionId::client(2);
    for net in [&mut a, &mut b] {
        commit(net, shared, 1, b"first");
        commit(net, shared, 2, b"second");
    }

    // Group A's log races ahead; `shared` idles there past the TTL.
    for i in 0..ttl + 4 {
        commit(&mut a, busy, i + 1, format!("busy-{i}").as_bytes());
    }
    assert!(
        a.node(NodeId(0)).sessions().get(shared).is_none(),
        "A should have evicted the idle session"
    );
    // B's table is untouched: same session, dedup history intact.
    let slot = b.node(NodeId(0)).sessions().get(shared).expect("live on B");
    assert_eq!(slot.floor_seq, 2);

    // A stale retry on B still answers Duplicate; on A it is terminal.
    // (A retried *first* write would legitimately re-apply — only seqs
    // beyond 1 are refused — so the retry probes seq 2.)
    commit(&mut b, shared, 2, b"second");
    assert!(
        b.responses_for(NodeId(0), shared, 2)
            .iter()
            .any(|o| matches!(o, ClientOutcome::Duplicate { .. })),
        "B must still dedup the retry"
    );
    commit(&mut a, shared, 2, b"second");
    assert!(
        a.responses_for(NodeId(0), shared, 2)
            .iter()
            .any(|o| matches!(o, ClientOutcome::SessionExpired)),
        "A must refuse the evicted session's retry"
    );
}

/// A split committed through the owning group's log takes effect at the
/// commit point on every proc's router replica, and traffic to the moved
/// half lands on the new group from then on.
#[test]
fn split_reroutes_new_traffic_end_to_end() {
    let cfg = small_cfg(1, 8, SimDuration::from_secs(30));
    let mut runner = ShardRunner::new(cfg, Vec::new(), raft_factory(Timing::lan()));
    runner.schedule_reconfig(
        SimTime::from_secs(8),
        ReconfigOp::SplitGroup {
            group: GroupId(0),
            at: 1 << 63,
            new_group: GroupId(1),
        },
    );
    runner.run_until(SimTime::from_secs(20));

    let m = runner.metrics().clone();
    assert!(runner.violations().is_empty(), "{:?}", runner.violations());
    // Every proc applied the op at its own commit point.
    assert_eq!(m.reconfigs_applied, 3, "one apply per proc replica");
    for p in 0..3 {
        assert_eq!(runner.router(p).range_count(), 2, "proc {p} table");
        assert_eq!(runner.router(p).epoch(), 1, "proc {p} epoch");
    }
    assert_eq!(runner.group_count(), 2, "split created the new group");
    // The upper half of a uniform key mix flows to the new group.
    assert!(
        m.per_group_completed.get(&1).copied().unwrap_or(0) > 0,
        "no traffic reached the split-off group: {:?}",
        m.per_group_completed
    );
}

/// Idle groups park (zero timers in the wheel) and a rebalance that sends
/// traffic to a parked group wakes it.
#[test]
fn parked_group_wakes_on_rerouted_traffic() {
    let mut cfg = small_cfg(2, 8, SimDuration::from_millis(800));
    // All client keys route to group 0; group 1 idles and parks.
    cfg.workload.target_group = Some(GroupId(0));
    let mut runner = ShardRunner::new(cfg, Vec::new(), raft_factory(Timing::lan()));
    runner.run_until(SimTime::from_secs(8));
    assert!(
        runner.metrics().parks >= 1 && runner.parked_groups() >= 1,
        "group 1 should have parked: {} parks",
        runner.metrics().parks
    );

    // Move group 0's whole range to group 1: every subsequent op wakes it.
    runner.schedule_reconfig(
        SimTime::from_secs(9),
        ReconfigOp::MoveRange {
            start: 0,
            to: GroupId(1),
        },
    );
    runner.run_until(SimTime::from_secs(20));

    let m = runner.metrics().clone();
    assert!(runner.violations().is_empty(), "{:?}", runner.violations());
    assert!(m.unparks >= 1, "rerouted traffic never woke group 1");
    assert!(
        m.per_group_completed.get(&1).copied().unwrap_or(0) > 0,
        "woken group completed nothing: {:?}",
        m.per_group_completed
    );
    // Group 0, now traffic-less, eventually parks too.
    assert!(m.parks >= 2, "drained group 0 never parked: {} parks", m.parks);
}

/// The fabric is deterministic: the same seed replays the same run,
/// event for event — and a mostly-parked fleet keeps the wheel small.
#[test]
fn runs_are_deterministic_and_parked_fleet_is_cheap() {
    let run = || {
        let mut cfg = small_cfg(32, 4, SimDuration::from_millis(500));
        cfg.workload.target_group = Some(GroupId(0));
        let mut r = ShardRunner::new(cfg, Vec::new(), raft_factory(Timing::lan()));
        r.run_until(SimTime::from_secs(12));
        assert!(r.violations().is_empty(), "{:?}", r.violations());
        let m = r.metrics().clone();
        (
            m.events_total,
            m.completed_total,
            m.parks,
            r.parked_groups(),
            r.wheel_len(),
        )
    };
    let (events, completed, parks, parked, wheel_len) = run();
    assert!(completed > 0);
    assert!(parked >= 31, "only {parked}/31 idle groups parked");
    // Live wheel entries belong to the one active group (plus its idle
    // check): parked groups contribute nothing.
    assert!(
        wheel_len <= 16,
        "wheel holds {wheel_len} entries with 31 groups parked"
    );
    assert_eq!((events, completed, parks, parked, wheel_len), run());
}

