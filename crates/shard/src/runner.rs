//! The multi-group runner: thousands of consensus groups in one process
//! fabric, scheduled by a timer wheel so idle groups cost zero.
//!
//! # Topology
//!
//! `procs` processes (fabric endpoints, [`NodeId`] `0..procs`) each host a
//! replica of **every** group, so a group is an independent consensus
//! instance over the same proc set. The unit of network traffic is the
//! proc pair, not the group: all messages one proc emits toward one peer
//! while handling a single event coalesce into one [`ShardEnvelope`] —
//! one frame, one latency sample, one delivery event — and demultiplex by
//! [`GroupId`] at the receiver.
//!
//! # Scheduling
//!
//! All timers of all groups live in one hierarchical [`TimerWheel`]
//! keyed by a packed `(proc, group, kind)` word, and the wheel is driven
//! by a **single** event in the discrete-event simulation, re-armed to the
//! wheel's next deadline after every dispatch. The per-event cost is
//! therefore O(due work), never O(groups): a group with nothing due
//! contributes no event, no heap entry, and no per-tick poll.
//!
//! # Hibernation
//!
//! A group with no client traffic still heartbeats. When a group has seen
//! no client op for `idle_after`, has no frames in flight, and is
//! leadership-settled (one quiescent leader, followers tracking it), the
//! runner **parks** it: every replica's pending timers are removed from
//! the wheel with their remaining durations recorded. A parked group
//! consumes zero CPU — no heartbeats, no events — until a client op or a
//! stray frame **unparks** it, re-arming each timer at `now + remaining`.
//! Because the leader's heartbeat remainder is always shorter than any
//! follower's election remainder, the first post-wake timer is the
//! heartbeat, so waking never triggers a spurious election.
//!
//! Consensus safety is untouched by parking: parking only defers timers,
//! and Raft's safety does not depend on timing. A parked group's replicas
//! hold their persisted state; the cross-replica commit-agreement check
//! ([`ShardRunner::violations`]) runs over all groups, parked or not.
//!
//! # Rebalance
//!
//! [`ReconfigOp`]s submitted through [`ShardRunner::schedule_reconfig`]
//! are committed through the owning group's log as magic-prefixed writes.
//! Each proc applies the op to *its* router replica at its own commit
//! point, so routing tables change exactly when the op's position in the
//! group's linearizable history is reached — procs may briefly disagree,
//! and a write routed by a stale table simply lands on the old group,
//! whose history still linearizes it (see `docs/CONSISTENCY.md`).

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;
use des::{EventId, Firing, SimDuration, SimRng, SimTime, Simulation, TimerWheel};
use raft::{RaftNode, Role, Timing};
use simnet::{Network, Verdict};
use storage::StableState;
use wire::{
    Actions, ClientOp, ClientOutcome, ClientRequest, Configuration, ConsensusProtocol, EntryId,
    GroupId, LogIndex, LogScope, NodeId, Observation, Payload, SessionId, ShardEnvelope, TimerCmd,
    TimerKind,
};

use crate::router::{ReconfigOp, ShardRouter};
use crate::zipf::Zipf;

/// Packs a protocol timer identity into one wheel key.
/// Layout: `proc << 40 | group << 8 | kind`, with kind `0xff` reserved
/// for the per-group idle check (proc bits zero there).
fn timer_key(proc: u64, group: u32, kind: TimerKind) -> u64 {
    (proc << 40) | ((group as u64) << 8) | kind.index() as u64
}

/// The per-group hibernation-check key (kind byte `0xff`).
fn idle_key(group: u32) -> u64 {
    ((group as u64) << 8) | 0xff
}

/// Extra capabilities the sharded runner needs from an engine beyond the
/// sans-IO [`ConsensusProtocol`] surface: the hibernation gate must see
/// whether a replica is settled before parking its group.
pub trait ShardNode: ConsensusProtocol {
    /// `true` when this replica is the group's current leader with no
    /// client work in flight (safe to stop heartbeating).
    fn is_settled_leader(&self) -> bool;
    /// `true` when this replica is a follower that knows who leads.
    fn is_quiet_follower(&self) -> bool;
}

impl ShardNode for RaftNode {
    fn is_settled_leader(&self) -> bool {
        self.role() == Role::Leader && self.pending_proposals() == 0
    }
    fn is_quiet_follower(&self) -> bool {
        self.role() == Role::Follower && self.leader_hint().is_some()
    }
}

/// Constructor invoked for every `(group, proc)` replica the fabric hosts.
pub type EngineFactory<P> = dyn Fn(GroupId, NodeId, &Configuration, SimRng) -> P;

/// A factory producing classic-Raft engines with the given timing for
/// every `(group, proc)` replica.
pub fn raft_factory(
    timing: Timing,
) -> impl Fn(GroupId, NodeId, &Configuration, SimRng) -> RaftNode + 'static {
    move |_group, id, cfg, rng| RaftNode::new(id, cfg.clone(), timing, rng)
}

/// The closed-loop client workload driven against the sharded fabric.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Closed-loop client count (each keeps exactly one op in flight).
    pub clients: usize,
    /// Key-space size; keys are 8-byte big-endian ids.
    pub keys: u64,
    /// Zipfian skew over the key space (0 = uniform, 0.99 = YCSB-ish).
    pub zipf_theta: f64,
    /// Written value size in bytes.
    pub payload_bytes: usize,
    /// When clients start issuing.
    pub start_at: SimTime,
    /// Resubmit an unanswered op after this long.
    pub op_timeout: SimDuration,
    /// Backoff before resubmitting on `Retry`/`Redirect`.
    pub retry_backoff: SimDuration,
    /// When set, restrict the key set to keys routed to this group —
    /// the "1 active + N idle groups" cell of the acceptance sweep.
    pub target_group: Option<GroupId>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            clients: 64,
            keys: 4096,
            zipf_theta: 0.99,
            payload_bytes: 64,
            start_at: SimTime::from_secs(5),
            op_timeout: SimDuration::from_secs(2),
            retry_backoff: SimDuration::from_millis(25),
            target_group: None,
        }
    }
}

/// Runner topology and scheduling knobs.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Fabric endpoints; every group replicates across all of them.
    pub procs: u64,
    /// Initial group count (ranges split uniformly).
    pub groups: u32,
    /// Root seed for all derived randomness.
    pub seed: u64,
    /// Park a group after this much client silence; `ZERO` disables
    /// hibernation (idle groups keep heartbeating forever).
    pub idle_after: SimDuration,
    /// The client workload.
    pub workload: WorkloadSpec,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            procs: 3,
            groups: 1,
            seed: 1,
            idle_after: SimDuration::from_secs(1),
            workload: WorkloadSpec::default(),
        }
    }
}

/// Counters reported by the runner. `*_window` counters only accumulate
/// inside the measurement window set by
/// [`ShardRunner::set_measure_window`]; the rest are run-lifetime totals.
#[derive(Clone, Debug, Default)]
pub struct ShardMetrics {
    /// Simulation events dispatched (lifetime).
    pub events_total: u64,
    /// Simulation events dispatched inside the window.
    pub events_window: u64,
    /// Client ops completed (lifetime).
    pub completed_total: u64,
    /// Client ops completed inside the window.
    pub completed_window: u64,
    /// Sum of completion latencies (µs) inside the window.
    pub latency_window_us: u64,
    /// Fabric frames delivered-scheduled inside the window.
    pub frames_window: u64,
    /// Group messages carried by those frames (coalescing ratio =
    /// `group_msgs_window / frames_window`).
    pub group_msgs_window: u64,
    /// Wheel drive events dispatched.
    pub wheel_events: u64,
    /// Protocol timers armed into the wheel.
    pub timers_set: u64,
    /// Protocol timers cancelled (live entries disarmed).
    pub timers_cancelled: u64,
    /// Groups parked by the hibernation gate.
    pub parks: u64,
    /// Groups woken by client ops or stray frames.
    pub unparks: u64,
    /// Elections started across all groups.
    pub elections: u64,
    /// Leaderships won across all groups.
    pub leader_changes: u64,
    /// Router ops applied at a proc's commit point (counts per proc).
    pub reconfigs_applied: u64,
    /// Router ops rejected as stale at apply time (counts per proc).
    pub reconfigs_rejected: u64,
    /// Client resubmissions (timeouts, `Retry`, `Redirect`).
    pub retries: u64,
    /// Completed ops per group (lifetime), for placement assertions.
    pub per_group_completed: BTreeMap<u32, u64>,
}

enum Ev<M> {
    /// A coalesced fabric frame arriving at `to`.
    Frame {
        from: NodeId,
        to: NodeId,
        env: ShardEnvelope<M>,
    },
    /// Drive the timer wheel up to `now`.
    Wheel,
    /// A closed-loop client issues its first op.
    ClientStart { client: usize },
    /// Resubmission guard for an outstanding op.
    Nudge { client: usize, tag: u64, nudge: u64 },
    /// The admin client submits scripted reconfig op `idx`.
    Reconfig { idx: usize },
}

struct OutOp {
    tag: u64,
    nudge: u64,
    attempts: u32,
    group: u32,
    seq: u64,
    data: Bytes,
    issued_at: SimTime,
    admin_idx: Option<usize>,
}

struct Client {
    session: SessionId,
    gateway: u64,
    /// Last used sequence number **per group**: sessions are scoped to a
    /// group's log, so the exactly-once window of one group never absorbs
    /// another group's sequence numbers.
    seqs: HashMap<u32, u64>,
    outstanding: Option<OutOp>,
    is_admin: bool,
}

#[derive(Default)]
struct GroupCtl {
    last_client: SimTime,
    parked: bool,
    inflight: u32,
    outstanding: u32,
    parked_timers: Vec<(u64, TimerKind, SimDuration)>,
}

/// One process fabric multiplexing many consensus groups.
///
/// Generic over the engine (`RaftNode` via [`raft_factory`], or any
/// [`ShardNode`] implementation) so classic and fast groups share the
/// scheduling substrate.
pub struct ShardRunner<P: ShardNode> {
    sim: Simulation<Ev<P::Message>>,
    net: Network,
    net_rng: SimRng,
    wheel: TimerWheel<u64>,
    wheel_armed: Option<(SimTime, EventId)>,
    /// Engines keyed `(group, proc)` — BTreeMap for deterministic walks.
    engines: BTreeMap<(u32, u64), P>,
    disks: BTreeMap<(u32, u64), StableState>,
    /// One router replica per proc, updated at that proc's commit points.
    routers: Vec<ShardRouter>,
    groups: BTreeMap<u32, GroupCtl>,
    clients: Vec<Client>,
    session_owner: HashMap<u64, usize>,
    factory: Box<EngineFactory<P>>,
    engine_rng: SimRng,
    wl_rng: SimRng,
    zipf: Zipf,
    key_ids: Vec<u64>,
    procs: u64,
    idle_after: SimDuration,
    workload: WorkloadSpec,
    config: Configuration,
    reconfig_script: Vec<ReconfigOp>,
    admin_queue: VecDeque<usize>,
    next_tag: u64,
    /// Per-dispatch send coalescing buffer, keyed `(from, to)`.
    out_buf: BTreeMap<(u64, u64), ShardEnvelope<P::Message>>,
    resp_queue: VecDeque<(u64, u32, SessionId, u64, ClientOutcome)>,
    pending_reconfigs: VecDeque<(u64, ReconfigOp)>,
    /// Commit-agreement ledger: first-seen entry id per committed slot.
    commit_log: HashMap<(u32, LogScope, LogIndex), EntryId>,
    violations: Vec<String>,
    measure_from: SimTime,
    measure_until: SimTime,
    metrics: ShardMetrics,
    due_scratch: Vec<(SimTime, u64)>,
}

impl<P: ShardNode> ShardRunner<P> {
    /// Builds the fabric: all initial groups bootstrapped, clients and
    /// scripted reconfig ops scheduled, wheel armed.
    pub fn new(
        cfg: ShardConfig,
        reconfigs: Vec<(SimTime, ReconfigOp)>,
        factory: impl Fn(GroupId, NodeId, &Configuration, SimRng) -> P + 'static,
    ) -> Self {
        assert!(cfg.procs >= 1 && cfg.groups >= 1);
        let root = SimRng::seed_from_u64(cfg.seed);
        let config: Configuration = (0..cfg.procs).map(NodeId).collect();
        let router = ShardRouter::uniform(cfg.groups);

        // Key universe: all of 0..keys, or (for the idle-groups cell) the
        // first `keys` ids that route to the target group.
        let key_ids: Vec<u64> = match cfg.workload.target_group {
            None => (0..cfg.workload.keys).collect(),
            Some(tg) => {
                let mut ids = Vec::with_capacity(cfg.workload.keys as usize);
                let budget = cfg
                    .workload
                    .keys
                    .saturating_mul(cfg.groups as u64)
                    .saturating_mul(64);
                for id in 0..budget {
                    if router.assign(&id.to_be_bytes()) == tg {
                        ids.push(id);
                        if ids.len() as u64 == cfg.workload.keys {
                            break;
                        }
                    }
                }
                assert!(
                    !ids.is_empty(),
                    "no keys routed to target group {tg} within budget"
                );
                ids
            }
        };

        let mut runner = ShardRunner {
            sim: Simulation::new(cfg.seed ^ 0x5AD0_77EE),
            net: Network::reliable_lan((0..cfg.procs).map(NodeId)),
            net_rng: root.split("shard-net"),
            wheel: TimerWheel::new(),
            wheel_armed: None,
            engines: BTreeMap::new(),
            disks: BTreeMap::new(),
            routers: vec![router; cfg.procs as usize],
            groups: BTreeMap::new(),
            clients: Vec::new(),
            session_owner: HashMap::new(),
            factory: Box::new(factory),
            engine_rng: root.split("engines"),
            wl_rng: root.split("workload"),
            zipf: Zipf::new(key_ids.len(), cfg.workload.zipf_theta),
            key_ids,
            procs: cfg.procs,
            idle_after: cfg.idle_after,
            workload: cfg.workload.clone(),
            config,
            reconfig_script: reconfigs.iter().map(|&(_, op)| op).collect(),
            admin_queue: VecDeque::new(),
            next_tag: 0,
            out_buf: BTreeMap::new(),
            resp_queue: VecDeque::new(),
            pending_reconfigs: VecDeque::new(),
            commit_log: HashMap::new(),
            violations: Vec::new(),
            measure_from: SimTime::ZERO,
            measure_until: SimTime::MAX,
            metrics: ShardMetrics::default(),
            due_scratch: Vec::new(),
        };

        for g in 0..cfg.groups {
            runner.create_group(g);
        }

        // Workload clients, then one admin client for scripted reconfigs.
        for c in 0..runner.workload.clients + 1 {
            let is_admin = c == runner.workload.clients;
            let session = SessionId::client(c as u64 + 1);
            runner.session_owner.insert(session.as_u64(), c);
            runner.clients.push(Client {
                session,
                gateway: if is_admin { 0 } else { c as u64 % cfg.procs },
                seqs: HashMap::new(),
                outstanding: None,
                is_admin,
            });
        }
        for c in 0..runner.workload.clients {
            let at = runner.workload.start_at + SimDuration::from_micros(c as u64);
            runner.sim.schedule_at(at, Ev::ClientStart { client: c });
        }
        for (idx, &(at, _)) in reconfigs.iter().enumerate() {
            runner.sim.schedule_at(at, Ev::Reconfig { idx });
        }

        runner.settle();
        runner
    }

    /// Sets the half-open measurement window for `*_window` counters.
    pub fn set_measure_window(&mut self, from: SimTime, until: SimTime) {
        self.measure_from = from;
        self.measure_until = until;
    }

    /// Runs every event strictly before `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Firing { time, event, .. }) = self.sim.next_event_before(deadline) {
            self.metrics.events_total += 1;
            if self.in_window(time) {
                self.metrics.events_window += 1;
            }
            self.dispatch(event);
            self.settle();
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The accumulated counters.
    pub fn metrics(&self) -> &ShardMetrics {
        &self.metrics
    }

    /// Commit-agreement violations observed so far (empty = safe).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of groups currently hosted (initial + split-created).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of groups currently parked.
    pub fn parked_groups(&self) -> usize {
        self.groups.values().filter(|g| g.parked).count()
    }

    /// Whether `group` is currently parked.
    pub fn is_parked(&self, group: GroupId) -> bool {
        self.groups.get(&group.as_u32()).is_some_and(|c| c.parked)
    }

    /// Live entries in the shared timer wheel.
    pub fn wheel_len(&self) -> usize {
        self.wheel.len()
    }

    /// Proc `proc`'s routing-table replica.
    pub fn router(&self, proc: u64) -> &ShardRouter {
        &self.routers[proc as usize]
    }

    /// The engine hosting `group`'s replica at `proc`, if created.
    pub fn engine(&self, group: GroupId, proc: NodeId) -> Option<&P> {
        self.engines.get(&(group.as_u32(), proc.as_u64()))
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn in_window(&self, t: SimTime) -> bool {
        t >= self.measure_from && t < self.measure_until
    }

    fn dispatch(&mut self, ev: Ev<P::Message>) {
        match ev {
            Ev::Frame { from, to, env } => {
                for (group, msg) in env.into_frames() {
                    let g = group.as_u32();
                    if let Some(ctl) = self.groups.get_mut(&g) {
                        ctl.inflight = ctl.inflight.saturating_sub(1);
                    }
                    self.wake_if_parked(g);
                    self.step_engine(to.as_u64(), g, |e, out| e.on_message(from, msg, out));
                }
            }
            Ev::Wheel => {
                self.wheel_armed = None;
                self.metrics.wheel_events += 1;
                let now = self.sim.now();
                let mut due = std::mem::take(&mut self.due_scratch);
                due.clear();
                self.wheel.advance(now, &mut due);
                // Protocol timers first, idle checks last, so a park
                // decision never races a timer due at the same instant.
                for pass in 0..2 {
                    for &(_, key) in &due {
                        let kind_byte = (key & 0xff) as usize;
                        let is_idle = kind_byte == 0xff;
                        if (pass == 0) == is_idle {
                            continue;
                        }
                        let group = ((key >> 8) & 0xffff_ffff) as u32;
                        if is_idle {
                            self.idle_check(group);
                        } else {
                            let proc = key >> 40;
                            let kind = TimerKind::from_index(kind_byte)
                                .expect("wheel key carries a valid timer kind");
                            self.step_engine(proc, group, |e, out| e.on_timer(kind, out));
                        }
                    }
                }
                self.due_scratch = due;
            }
            Ev::ClientStart { client } => {
                if self.clients[client].outstanding.is_none() {
                    self.issue_next(client);
                }
            }
            Ev::Nudge { client, tag, nudge } => {
                let matches = self.clients[client]
                    .outstanding
                    .as_ref()
                    .is_some_and(|o| o.tag == tag && o.nudge == nudge);
                if matches {
                    self.resubmit(client);
                }
            }
            Ev::Reconfig { idx } => {
                let admin = self.workload.clients;
                if self.clients[admin].outstanding.is_some() {
                    self.admin_queue.push_back(idx);
                } else {
                    self.issue_admin(idx);
                }
            }
        }
    }

    /// Drains the post-dispatch work queues (commit-point router updates,
    /// client responses — which may step further engines), then flushes
    /// the coalesced frames of this instant and re-arms the wheel event.
    fn settle(&mut self) {
        loop {
            if let Some((proc, op)) = self.pending_reconfigs.pop_front() {
                self.apply_reconfig(proc, op);
                continue;
            }
            if let Some(resp) = self.resp_queue.pop_front() {
                self.handle_response(resp);
                continue;
            }
            break;
        }
        self.flush_frames();
        self.rearm_wheel();
    }

    // ------------------------------------------------------------------
    // Engine stepping and effects
    // ------------------------------------------------------------------

    fn step_engine<F>(&mut self, proc: u64, group: u32, f: F)
    where
        F: FnOnce(&mut P, &mut Actions<P::Message>),
    {
        let now = self.sim.now();
        let Some(eng) = self.engines.get_mut(&(group, proc)) else {
            return;
        };
        let mut out = Actions::new();
        eng.set_local_clock(now);
        f(eng, &mut out);
        while eng.pending_applies() > 0 {
            eng.drain_applies(&mut out);
        }
        self.process_actions(proc, group, now, out);
    }

    fn process_actions(&mut self, proc: u64, group: u32, now: SimTime, out: Actions<P::Message>) {
        let Actions {
            sends,
            timers,
            commits,
            persists,
            observations,
        } = out;

        if !persists.is_empty() {
            self.disks
                .get_mut(&(group, proc))
                .expect("disk exists for every engine")
                .apply_all(persists.iter());
        }

        for t in timers {
            match t {
                TimerCmd::Set { kind, after } => {
                    self.wheel.schedule(timer_key(proc, group, kind), now + after);
                    self.metrics.timers_set += 1;
                }
                TimerCmd::Cancel { kind } => {
                    if self.wheel.cancel(&timer_key(proc, group, kind)) {
                        self.metrics.timers_cancelled += 1;
                    }
                }
            }
        }

        for (to, msg) in sends {
            self.out_buf
                .entry((proc, to.as_u64()))
                .or_default()
                .push(GroupId(group), msg);
        }

        for c in commits {
            match self.commit_log.entry((group, c.scope, c.index)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != c.entry.id {
                        self.violations.push(format!(
                            "group g{group} {:?} index {} committed {:?} at proc {proc} \
                             but {:?} elsewhere",
                            c.scope,
                            c.index,
                            c.entry.id,
                            e.get()
                        ));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(c.entry.id);
                }
            }
            if let Payload::Write { data, .. } = &c.entry.payload {
                if let Some(op) = ReconfigOp::decode_payload(data) {
                    self.pending_reconfigs.push_back((proc, op));
                }
            }
        }

        for o in observations {
            match o {
                Observation::ElectionStarted { .. } => self.metrics.elections += 1,
                Observation::BecameLeader { .. } => self.metrics.leader_changes += 1,
                Observation::ClientResponse {
                    session,
                    seq,
                    outcome,
                } => self.resp_queue.push_back((proc, group, session, seq, outcome)),
                _ => {}
            }
        }
    }

    fn flush_frames(&mut self) {
        if self.out_buf.is_empty() {
            return;
        }
        let now = self.sim.now();
        let in_window = self.in_window(now);
        let buf = std::mem::take(&mut self.out_buf);
        for ((from, to), env) in buf {
            let bytes = wire::Message::wire_size(&env);
            match self
                .net
                .judge(NodeId(from), NodeId(to), bytes, &mut self.net_rng)
            {
                Verdict::Deliver { after } => {
                    if in_window {
                        self.metrics.frames_window += 1;
                        self.metrics.group_msgs_window += env.len() as u64;
                    }
                    for f in &env.frames {
                        if let Some(ctl) = self.groups.get_mut(&f.group.as_u32()) {
                            ctl.inflight += 1;
                        }
                    }
                    self.sim.schedule_after(
                        after,
                        Ev::Frame {
                            from: NodeId(from),
                            to: NodeId(to),
                            env,
                        },
                    );
                }
                Verdict::Drop { .. } => {}
            }
        }
    }

    fn rearm_wheel(&mut self) {
        match (self.wheel.next_deadline(), self.wheel_armed) {
            (Some(next), Some((at, _))) if at == next => {}
            (Some(next), prev) => {
                if let Some((_, id)) = prev {
                    self.sim.cancel(id);
                }
                let id = self.sim.schedule_at(next, Ev::Wheel);
                self.wheel_armed = Some((next, id));
            }
            (None, Some((_, id))) => {
                self.sim.cancel(id);
                self.wheel_armed = None;
            }
            (None, None) => {}
        }
    }

    // ------------------------------------------------------------------
    // Groups: creation and hibernation
    // ------------------------------------------------------------------

    fn create_group(&mut self, g: u32) {
        let now = self.sim.now();
        let ctl = GroupCtl {
            last_client: now,
            ..GroupCtl::default()
        };
        if self.idle_after > SimDuration::ZERO {
            self.wheel.schedule(idle_key(g), now + self.idle_after);
        }
        self.groups.insert(g, ctl);
        for proc in 0..self.procs {
            let rng = self
                .engine_rng
                .split_indexed("engine", ((g as u64) << 20) | proc);
            let eng = (self.factory)(GroupId(g), NodeId(proc), &self.config, rng);
            self.engines.insert((g, proc), eng);
            self.disks.insert((g, proc), StableState::new());
        }
        for proc in 0..self.procs {
            self.step_engine(proc, g, |e, out| e.bootstrap(out));
        }
    }

    fn ensure_group(&mut self, g: u32) {
        if !self.groups.contains_key(&g) {
            self.create_group(g);
        }
    }

    fn wake_if_parked(&mut self, g: u32) {
        let parked = self.groups.get(&g).is_some_and(|c| c.parked);
        if parked {
            self.unpark(g);
        }
    }

    fn unpark(&mut self, g: u32) {
        let now = self.sim.now();
        let Some(ctl) = self.groups.get_mut(&g) else {
            return;
        };
        ctl.parked = false;
        ctl.last_client = now;
        let timers = std::mem::take(&mut ctl.parked_timers);
        for (proc, kind, remaining) in timers {
            self.wheel.schedule(timer_key(proc, g, kind), now + remaining);
        }
        if self.idle_after > SimDuration::ZERO {
            self.wheel.schedule(idle_key(g), now + self.idle_after);
        }
        self.metrics.unparks += 1;
    }

    fn idle_check(&mut self, g: u32) {
        if self.idle_after == SimDuration::ZERO {
            return;
        }
        let now = self.sim.now();
        let Some(ctl) = self.groups.get(&g) else {
            return;
        };
        if ctl.parked {
            return;
        }
        let quiet_for = now.saturating_since(ctl.last_client);
        let client_busy = ctl.outstanding > 0 || quiet_for < self.idle_after;
        if client_busy || !self.leadership_settled(g) {
            self.wheel.schedule(idle_key(g), now + self.idle_after);
            return;
        }
        if ctl.inflight > 0 {
            // Only frames in flight stand between this group and parking.
            // Those windows are sub-millisecond, but a group whose
            // heartbeat phase straddles the check instant would stay
            // "busy" at *every* check — re-check shortly after the frames
            // land instead of a full idle period later.
            self.wheel
                .schedule(idle_key(g), now + SimDuration::from_millis(7));
            return;
        }
        // Park: strip every replica's timers, recording remainders.
        let mut parked_timers = Vec::new();
        for proc in 0..self.procs {
            for k in 0..TimerKind::COUNT {
                let kind = TimerKind::from_index(k).expect("k < COUNT");
                let key = timer_key(proc, g, kind);
                if let Some(deadline) = self.wheel.deadline_of(&key) {
                    self.wheel.cancel(&key);
                    parked_timers.push((proc, kind, deadline.saturating_since(now)));
                }
            }
        }
        let ctl = self.groups.get_mut(&g).expect("checked above");
        ctl.parked = true;
        ctl.parked_timers = parked_timers;
        self.metrics.parks += 1;
    }

    fn leadership_settled(&self, g: u32) -> bool {
        let mut leaders = 0;
        let mut quiet = 0;
        for proc in 0..self.procs {
            let Some(eng) = self.engines.get(&(g, proc)) else {
                return false;
            };
            if eng.is_settled_leader() {
                leaders += 1;
            } else if eng.is_quiet_follower() {
                quiet += 1;
            }
        }
        leaders == 1 && quiet == self.procs - 1
    }

    // ------------------------------------------------------------------
    // Reconfiguration
    // ------------------------------------------------------------------

    /// Queues a routing change for submission at `at` through the owning
    /// group's log. Call before `run_until` passes `at`.
    pub fn schedule_reconfig(&mut self, at: SimTime, op: ReconfigOp) {
        let idx = self.reconfig_script.len();
        self.reconfig_script.push(op);
        self.sim.schedule_at(at, Ev::Reconfig { idx });
    }

    fn apply_reconfig(&mut self, proc: u64, op: ReconfigOp) {
        match self.routers[proc as usize].apply(&op) {
            Ok(()) => {
                self.metrics.reconfigs_applied += 1;
                let target = match op {
                    ReconfigOp::SplitGroup { new_group, .. } => new_group,
                    ReconfigOp::MoveRange { to, .. } => to,
                };
                self.ensure_group(target.as_u32());
            }
            Err(_) => self.metrics.reconfigs_rejected += 1,
        }
    }

    fn issue_admin(&mut self, idx: usize) {
        let admin = self.workload.clients;
        let op = self.reconfig_script[idx];
        let gateway = self.clients[admin].gateway;
        let Some(src) = op.source_group(&self.routers[gateway as usize]) else {
            // Stale against the gateway's current table: drop it.
            self.metrics.reconfigs_rejected += 1;
            if let Some(next) = self.admin_queue.pop_front() {
                self.issue_admin(next);
            }
            return;
        };
        let data = op.encode_payload();
        self.submit_op(admin, src.as_u32(), data, Some(idx));
    }

    // ------------------------------------------------------------------
    // Clients
    // ------------------------------------------------------------------

    fn issue_next(&mut self, client: usize) {
        let rank = self.zipf.sample(&mut self.wl_rng) as usize;
        let key_id = self.key_ids[rank];
        let key = key_id.to_be_bytes();
        let gateway = self.clients[client].gateway;
        let group = self.routers[gateway as usize].assign(&key).as_u32();
        let mut data = Vec::with_capacity(self.workload.payload_bytes.max(8));
        data.extend_from_slice(&key);
        data.resize(self.workload.payload_bytes.max(8), 0);
        self.submit_op(client, group, Bytes::from(data), None);
    }

    fn submit_op(&mut self, client: usize, group: u32, data: Bytes, admin_idx: Option<usize>) {
        let now = self.sim.now();
        self.next_tag += 1;
        let tag = self.next_tag;
        let c = &mut self.clients[client];
        let seq = {
            let s = c.seqs.entry(group).or_insert(0);
            *s += 1;
            *s
        };
        c.outstanding = Some(OutOp {
            tag,
            nudge: 0,
            attempts: 0,
            group,
            seq,
            data,
            issued_at: now,
            admin_idx,
        });
        if let Some(ctl) = self.groups.get_mut(&group) {
            ctl.outstanding += 1;
            ctl.last_client = now;
        }
        self.wake_if_parked(group);
        self.push_request(client);
        self.arm_nudge(client, self.workload.op_timeout);
    }

    fn push_request(&mut self, client: usize) {
        let c = &self.clients[client];
        let out = c.outstanding.as_ref().expect("submitting an op");
        let req = ClientRequest {
            session: c.session,
            seq: out.seq,
            op: ClientOp::Write(out.data.clone()),
        };
        let (gateway, group) = (c.gateway, out.group);
        self.step_engine(gateway, group, |e, o| e.on_client_request(req, o));
    }

    fn arm_nudge(&mut self, client: usize, after: SimDuration) {
        let (tag, nudge) = {
            let out = self.clients[client]
                .outstanding
                .as_mut()
                .expect("arming a nudge for an outstanding op");
            out.nudge += 1;
            (out.tag, out.nudge)
        };
        self.sim
            .schedule_after(after, Ev::Nudge { client, tag, nudge });
    }

    fn resubmit(&mut self, client: usize) {
        let group = {
            let out = self.clients[client]
                .outstanding
                .as_mut()
                .expect("resubmit checked outstanding");
            out.attempts += 1;
            out.group
        };
        self.metrics.retries += 1;
        if let Some(ctl) = self.groups.get_mut(&group) {
            ctl.last_client = self.sim.now();
        }
        self.wake_if_parked(group);
        self.push_request(client);
        self.arm_nudge(client, self.workload.op_timeout);
    }

    fn handle_response(&mut self, resp: (u64, u32, SessionId, u64, ClientOutcome)) {
        let (_proc, group, session, seq, outcome) = resp;
        let Some(&client) = self.session_owner.get(&session.as_u64()) else {
            return;
        };
        let matches = self.clients[client]
            .outstanding
            .as_ref()
            .is_some_and(|o| o.group == group && o.seq == seq);
        if !matches {
            return;
        }
        match outcome {
            ClientOutcome::Committed { .. }
            | ClientOutcome::Duplicate { .. }
            | ClientOutcome::ReadOk { .. }
            | ClientOutcome::Registered { .. } => self.complete_op(client, true),
            ClientOutcome::SessionExpired => self.complete_op(client, false),
            ClientOutcome::Redirect { .. } | ClientOutcome::Retry => {
                self.arm_nudge(client, self.workload.retry_backoff);
            }
        }
    }

    fn complete_op(&mut self, client: usize, count: bool) {
        let now = self.sim.now();
        let out = self.clients[client]
            .outstanding
            .take()
            .expect("completing an outstanding op");
        if let Some(ctl) = self.groups.get_mut(&out.group) {
            ctl.outstanding = ctl.outstanding.saturating_sub(1);
        }
        if count {
            self.metrics.completed_total += 1;
            *self
                .metrics
                .per_group_completed
                .entry(out.group)
                .or_insert(0) += 1;
            if self.in_window(now) {
                self.metrics.completed_window += 1;
                self.metrics.latency_window_us += now.saturating_since(out.issued_at).as_micros();
            }
        }
        if self.clients[client].is_admin {
            if out.admin_idx.is_some() {
                if let Some(next) = self.admin_queue.pop_front() {
                    self.issue_admin(next);
                }
            }
        } else {
            self.issue_next(client);
        }
    }
}
