//! Deterministic Zipfian key sampling for the sharded workload.
//!
//! The sweep draws keys from a Zipf(θ) distribution over `0..n` so load
//! concentrates on a hot head the way real key-value traffic does — the
//! aggregate-throughput acceptance cell ("committed ops/sec rises
//! monotonically 1 → 16 → 256 groups") is only meaningful under a skewed
//! mix, where a single group saturates on the hot keys while spare groups
//! absorb the tail.
//!
//! Inverse-CDF sampling over a precomputed prefix table: exact (no
//! rejection loop, every `u64` from the RNG maps to one key), O(log n)
//! per draw, and a pure function of `(seed, draw index)` — reruns of the
//! same seed replay the same key sequence byte for byte.

use des::SimRng;

/// A Zipf(θ) sampler over ranks `0..n` (rank 0 most popular).
///
/// θ = 0 degenerates to uniform; θ ≈ 0.99 is the YCSB default skew.
///
/// # Examples
///
/// ```
/// use des::SimRng;
/// use shard::Zipf;
///
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = SimRng::seed_from_u64(7);
/// let k = z.sample(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    /// `cdf[i]` = P(rank ≤ i), monotone, `cdf[n-1]` == 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the prefix table for `n` ranks at skew `theta`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        assert!(theta >= 0.0, "negative skew is meaningless");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        // 53-bit uniform in [0, 1): full f64 precision, no modulo bias.
        let u = rng.gen_range(0u64..(1 << 53)) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for c in counts {
            assert!((1600..=2400).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn skew_concentrates_on_head() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SimRng::seed_from_u64(2);
        let mut head = 0u32;
        const DRAWS: u32 = 10_000;
        for _ in 0..DRAWS {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Zipf(0.99) over 1000 ranks puts ~45% of mass on the top 10.
        assert!(head > DRAWS / 3, "head mass too small: {head}");
    }

    #[test]
    fn deterministic_across_reruns() {
        let z = Zipf::new(64, 0.8);
        let draw = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..32).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
