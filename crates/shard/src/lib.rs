//! # `shard` — multi-group sharding over one consensus fabric
//!
//! One process can host **thousands** of consensus groups when three
//! costs are removed (the tentpole of this crate):
//!
//! - **Routing**: [`ShardRouter`] maps keys to groups through a sorted
//!   hash-range table; rebalance ops ([`ReconfigOp`]) commit through the
//!   owning group's own log, so every replica flips its table at the same
//!   point of that group's linearizable history.
//! - **Scheduling**: all timers of all groups live in one hierarchical
//!   timer wheel (`des::TimerWheel`), driven by a single simulation event
//!   re-armed to the wheel's next deadline. Per-event cost is O(due
//!   work), never O(groups).
//! - **Idle groups**: a leadership-settled group with no client traffic
//!   is **parked** — its timers leave the wheel with remainders recorded,
//!   so it consumes zero CPU until traffic returns. See
//!   [`ShardRunner`] for the full hibernation state machine.
//!
//! Messages from co-located groups to the same peer proc coalesce into
//! one [`wire::ShardEnvelope`] fabric frame per scheduling step.
//!
//! The sweep entry point ([`run_sweep`]) measures the two headline claims
//! (idle groups within 10% of free; throughput monotone in group count)
//! and feeds the `shard_sweep` CI gate.
//!
//! # Examples
//!
//! ```
//! use des::{SimDuration, SimTime};
//! use raft::Timing;
//! use shard::{raft_factory, ShardConfig, ShardRunner, WorkloadSpec};
//!
//! let cfg = ShardConfig {
//!     procs: 3,
//!     groups: 4,
//!     seed: 7,
//!     idle_after: SimDuration::from_secs(1),
//!     workload: WorkloadSpec {
//!         clients: 8,
//!         start_at: SimTime::from_secs(2),
//!         ..WorkloadSpec::default()
//!     },
//! };
//! let mut fabric = ShardRunner::new(cfg, Vec::new(), raft_factory(Timing::lan()));
//! fabric.run_until(SimTime::from_secs(8));
//! assert!(fabric.metrics().completed_total > 0);
//! assert!(fabric.violations().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod router;
mod runner;
mod sweep;
mod zipf;

pub use router::{key_hash, ReconfigError, ReconfigOp, ShardRouter, RECONFIG_MAGIC};
pub use runner::{
    raft_factory, ShardConfig, ShardMetrics, ShardNode, ShardRunner, WorkloadSpec,
};
pub use sweep::{ShardSweepResult, SweepCell};
pub use zipf::Zipf;

/// Re-exported for downstream convenience: the sweep entry point.
pub use sweep::run as run_sweep;
