//! Key → group routing over hash ranges, with consensus-backed rebalance.
//!
//! The router is a sorted table of half-open ranges over the full `u64`
//! hash space: entry `i` owns `[start_i, start_{i+1})` (the last entry
//! wraps to `u64::MAX` inclusive). Every key hashes to exactly one range,
//! so assignment is **total**; the table is a pure value, so assignment is
//! **deterministic**; and a [`ReconfigOp`] touches exactly one range, so
//! every key outside the reconfigured range keeps its group — assignment
//! is **stable** under splits and moves (the property tests in
//! `tests/router_props.rs` pin all three).
//!
//! Rebalance ops are not applied directly: they are encoded as a
//! magic-prefixed write payload and committed through the *owning* group's
//! log ([`ReconfigOp::source_group`]), so every replica applies the same
//! op at the same point in that group's linearizable history. Per-range
//! ops thereby serialize through the range's own group; concurrent ops on
//! different ranges commute because their ranges are disjoint.

use bytes::Bytes;
use wire::{Decoder, Encoder, GroupId};

/// Magic prefix marking a committed write payload as a routing reconfig
/// op rather than application data. Client payloads are either empty or
/// drawn from a payload RNG, so an accidental 12-byte match does not occur
/// in practice (and would only misroute a synthetic benchmark value).
pub const RECONFIG_MAGIC: &[u8; 12] = b"\0SHARD-CFG\x01\x7f";

/// FNV-1a over the key bytes, finished with a splitmix64 avalanche so
/// short sequential keys (the benchmark encodes key ids as 8 big-endian
/// bytes) spread over the whole `u64` space instead of clustering.
pub fn key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A routing-table change, committed through the owning group's log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconfigOp {
    /// Split the range containing `at`: hashes in `[at, end)` move from
    /// `group` to the (fresh) `new_group`; `[start, at)` stays put.
    SplitGroup {
        /// The current owner of the range containing `at`.
        group: GroupId,
        /// The split point (must be strictly inside the range).
        at: u64,
        /// The group receiving the upper half.
        new_group: GroupId,
    },
    /// Reassign the whole range starting at boundary `start` to `to`.
    MoveRange {
        /// An existing range boundary.
        start: u64,
        /// The new owner.
        to: GroupId,
    },
}

/// Why a [`ReconfigOp`] was rejected by [`ShardRouter::apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconfigError {
    /// The named source group does not own the range containing `at`.
    WrongOwner,
    /// The split point equals the range start (lower half would be empty).
    EmptySplit,
    /// `new_group` already owns a range (splits must mint fresh groups).
    GroupExists,
    /// `start` is not an existing range boundary.
    NoSuchRange,
    /// The op is a no-op (moving a range to its current owner).
    NoOp,
}

impl ReconfigOp {
    /// The group whose log this op must commit through: the current owner
    /// of the affected range under `router`'s table. `None` when the op
    /// does not validate against the table (stale op — drop it).
    pub fn source_group(&self, router: &ShardRouter) -> Option<GroupId> {
        match *self {
            ReconfigOp::SplitGroup { group, at, .. } => {
                (router.group_for_hash(at) == group).then_some(group)
            }
            ReconfigOp::MoveRange { start, .. } => router.owner_of_boundary(start),
        }
    }

    /// Encodes the op as a magic-prefixed write payload.
    pub fn encode_payload(&self) -> Bytes {
        let mut e = Encoder::new();
        for &b in RECONFIG_MAGIC {
            e.put_u8(b);
        }
        match *self {
            ReconfigOp::SplitGroup {
                group,
                at,
                new_group,
            } => {
                e.put_u8(1);
                e.put_u32(group.as_u32());
                e.put_u64(at);
                e.put_u32(new_group.as_u32());
            }
            ReconfigOp::MoveRange { start, to } => {
                e.put_u8(2);
                e.put_u64(start);
                e.put_u32(to.as_u32());
            }
        }
        e.finish()
    }

    /// Decodes a committed write payload, `None` when it is not a
    /// reconfig op (no magic prefix, or malformed after the prefix).
    pub fn decode_payload(data: &[u8]) -> Option<ReconfigOp> {
        let rest = data.strip_prefix(&RECONFIG_MAGIC[..])?;
        let mut d = Decoder::new(rest);
        let op = match d.u8().ok()? {
            1 => ReconfigOp::SplitGroup {
                group: GroupId(d.u32().ok()?),
                at: d.u64().ok()?,
                new_group: GroupId(d.u32().ok()?),
            },
            2 => ReconfigOp::MoveRange {
                start: d.u64().ok()?,
                to: GroupId(d.u32().ok()?),
            },
            _ => return None,
        };
        d.finish().ok()?;
        Some(op)
    }
}

/// The hash-range routing table: `ranges[i]` owns `[ranges[i].0,
/// ranges[i+1].0)`; the first start is always 0, so coverage is total.
///
/// # Examples
///
/// ```
/// use shard::{key_hash, ShardRouter};
///
/// let router = ShardRouter::uniform(16);
/// let g = router.assign(b"alpha");
/// assert_eq!(router.group_for_hash(key_hash(b"alpha")), g);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    ranges: Vec<(u64, GroupId)>,
    epoch: u64,
}

impl ShardRouter {
    /// A table splitting the hash space into `groups` equal ranges owned
    /// by `GroupId(0..groups)`. `groups` must be ≥ 1.
    pub fn uniform(groups: u32) -> Self {
        assert!(groups >= 1, "router needs at least one group");
        let step = if groups == 1 {
            0
        } else {
            u64::MAX / groups as u64
        };
        let ranges = (0..groups)
            .map(|g| (step * g as u64, GroupId(g)))
            .collect();
        ShardRouter { ranges, epoch: 0 }
    }

    /// Number of ranges (≥ number of distinct groups).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// The sorted `(start_hash, owner)` table.
    pub fn ranges(&self) -> &[(u64, GroupId)] {
        &self.ranges
    }

    /// Monotone table version: bumped once per applied op.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The distinct groups currently owning at least one range, in
    /// ascending id order.
    pub fn groups(&self) -> Vec<GroupId> {
        let mut gs: Vec<GroupId> = self.ranges.iter().map(|&(_, g)| g).collect();
        gs.sort_unstable();
        gs.dedup();
        gs
    }

    /// The owner of the range containing `hash`. Total: every hash maps.
    pub fn group_for_hash(&self, hash: u64) -> GroupId {
        let i = self.ranges.partition_point(|&(start, _)| start <= hash);
        // partition_point ≥ 1 because ranges[0].0 == 0.
        self.ranges[i - 1].1
    }

    /// Routes a key: hash then look up.
    pub fn assign(&self, key: &[u8]) -> GroupId {
        self.group_for_hash(key_hash(key))
    }

    /// The owner of the range whose start is exactly `start`, if any.
    pub fn owner_of_boundary(&self, start: u64) -> Option<GroupId> {
        self.ranges
            .binary_search_by_key(&start, |&(s, _)| s)
            .ok()
            .map(|i| self.ranges[i].1)
    }

    /// Applies a validated op, bumping the epoch. Rejected ops leave the
    /// table (and epoch) untouched — replicas applying a stale op from a
    /// re-delivered commit simply drop it.
    pub fn apply(&mut self, op: &ReconfigOp) -> Result<(), ReconfigError> {
        match *op {
            ReconfigOp::SplitGroup {
                group,
                at,
                new_group,
            } => {
                let i = self.ranges.partition_point(|&(start, _)| start <= at) - 1;
                if self.ranges[i].1 != group {
                    return Err(ReconfigError::WrongOwner);
                }
                if self.ranges[i].0 == at {
                    return Err(ReconfigError::EmptySplit);
                }
                if self.ranges.iter().any(|&(_, g)| g == new_group) {
                    return Err(ReconfigError::GroupExists);
                }
                self.ranges.insert(i + 1, (at, new_group));
            }
            ReconfigOp::MoveRange { start, to } => {
                let i = self
                    .ranges
                    .binary_search_by_key(&start, |&(s, _)| s)
                    .map_err(|_| ReconfigError::NoSuchRange)?;
                if self.ranges[i].1 == to {
                    return Err(ReconfigError::NoOp);
                }
                self.ranges[i].1 = to;
            }
        }
        self.epoch += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let r = ShardRouter::uniform(4);
        assert_eq!(r.group_for_hash(0), GroupId(0));
        assert_eq!(r.group_for_hash(u64::MAX), GroupId(3));
        assert_eq!(r.groups().len(), 4);
    }

    #[test]
    fn single_group_owns_everything() {
        let r = ShardRouter::uniform(1);
        for h in [0, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(r.group_for_hash(h), GroupId(0));
        }
    }

    #[test]
    fn split_moves_only_upper_half() {
        let mut r = ShardRouter::uniform(1);
        let op = ReconfigOp::SplitGroup {
            group: GroupId(0),
            at: 1 << 63,
            new_group: GroupId(1),
        };
        assert_eq!(op.source_group(&r), Some(GroupId(0)));
        r.apply(&op).unwrap();
        assert_eq!(r.group_for_hash((1 << 63) - 1), GroupId(0));
        assert_eq!(r.group_for_hash(1 << 63), GroupId(1));
        assert_eq!(r.epoch(), 1);
    }

    #[test]
    fn split_validation() {
        let mut r = ShardRouter::uniform(2);
        let wrong_owner = ReconfigOp::SplitGroup {
            group: GroupId(1),
            at: 1,
            new_group: GroupId(2),
        };
        assert_eq!(r.apply(&wrong_owner), Err(ReconfigError::WrongOwner));
        let empty = ReconfigOp::SplitGroup {
            group: GroupId(0),
            at: 0,
            new_group: GroupId(2),
        };
        assert_eq!(r.apply(&empty), Err(ReconfigError::EmptySplit));
        let exists = ReconfigOp::SplitGroup {
            group: GroupId(0),
            at: 7,
            new_group: GroupId(1),
        };
        assert_eq!(r.apply(&exists), Err(ReconfigError::GroupExists));
        assert_eq!(r.epoch(), 0);
    }

    #[test]
    fn move_range_reassigns_boundary() {
        let mut r = ShardRouter::uniform(2);
        let start = r.ranges()[1].0;
        r.apply(&ReconfigOp::MoveRange {
            start,
            to: GroupId(0),
        })
        .unwrap();
        assert_eq!(r.group_for_hash(u64::MAX), GroupId(0));
        assert_eq!(
            r.apply(&ReconfigOp::MoveRange {
                start: start + 1,
                to: GroupId(0)
            }),
            Err(ReconfigError::NoSuchRange)
        );
    }

    #[test]
    fn payload_roundtrip_and_magic_gate() {
        for op in [
            ReconfigOp::SplitGroup {
                group: GroupId(3),
                at: 0xdead_beef_0000_0001,
                new_group: GroupId(9),
            },
            ReconfigOp::MoveRange {
                start: 42,
                to: GroupId(7),
            },
        ] {
            let payload = op.encode_payload();
            assert_eq!(ReconfigOp::decode_payload(&payload), Some(op));
        }
        assert_eq!(ReconfigOp::decode_payload(b""), None);
        assert_eq!(ReconfigOp::decode_payload(b"ordinary write"), None);
        // Magic with trailing garbage is not an op either.
        let mut bad = RECONFIG_MAGIC.to_vec();
        bad.push(9);
        assert_eq!(ReconfigOp::decode_payload(&bad), None);
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        let r = ShardRouter::uniform(16);
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..256 {
            seen.insert(r.assign(&k.to_be_bytes()));
        }
        assert!(seen.len() >= 12, "sequential keys clustered: {}", seen.len());
    }
}
