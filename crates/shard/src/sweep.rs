//! The `shard_sweep` acceptance probe.
//!
//! Two claims from the sharding tentpole, measured in one deterministic
//! sweep over the multi-group runner:
//!
//! 1. **Idle groups cost zero.** A fabric hosting 1 active + 4096 idle
//!    groups commits within a few percent of the same fabric hosting the
//!    active group alone — the timer wheel never polls parked groups, and
//!    hibernation stops their heartbeats entirely. A hibernation-off
//!    contrast cell shows the event volume parking removes.
//! 2. **Aggregate throughput scales with group count.** Under a Zipfian
//!    key mix and a deliberately tight per-append entry budget, committed
//!    ops/sec rises monotonically from 1 → 16 → 256 groups: each group's
//!    replication pipeline is budget-bound per heartbeat, so independent
//!    groups multiply capacity.
//!
//! The JSON series are all "higher is better" so the CI gate's
//! lower-bound direction points the right way; ratios near 1.0 (idle
//! efficiency) are stored as ratios, not overheads.

use des::{SimDuration, SimTime};
use raft::Timing;
use wire::GroupId;

use crate::runner::{raft_factory, ShardConfig, ShardRunner, WorkloadSpec};

/// One measured cell of the sweep.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Cell label ("g16", "idle4096", ...).
    pub label: String,
    /// Groups hosted (initial).
    pub groups: u32,
    /// Committed client ops per measured second.
    pub tput: f64,
    /// Mean client-observed commit latency (ms).
    pub mean_ms: f64,
    /// Simulation events dispatched inside the window.
    pub events: u64,
    /// Fabric frames delivered inside the window.
    pub frames: u64,
    /// Group messages those frames carried.
    pub group_msgs: u64,
    /// Groups parked over the run.
    pub parks: u64,
    /// Groups parked at the end of the run.
    pub parked_at_end: usize,
    /// Live wheel entries at the end of the run.
    pub wheel_len: usize,
}

/// The full sweep: scaling cells plus the idle-cost triplet.
#[derive(Clone, Debug)]
pub struct ShardSweepResult {
    /// 1 / 16 / 256 groups under the shared Zipfian workload.
    pub scaling: Vec<SweepCell>,
    /// The active group alone (baseline for the idle ratio).
    pub alone: SweepCell,
    /// 1 active + 4096 idle groups, hibernation on.
    pub idle: SweepCell,
    /// 1 active + 4096 idle groups, hibernation off (contrast).
    pub no_hibernate: SweepCell,
}

/// Timing for the sweep: LAN numbers with a deliberately tight per-append
/// entry budget, so a single group's replication pipeline saturates well
/// below the offered load and group count is the scaling axis.
fn sweep_timing() -> Timing {
    let mut t = Timing::lan();
    t.max_entries_per_append = 32;
    t
}

struct CellSpec {
    label: &'static str,
    groups: u32,
    clients: usize,
    idle_after: SimDuration,
    target_group: Option<GroupId>,
}

fn run_cell(seed: u64, quick: bool, spec: &CellSpec) -> SweepCell {
    let (measure_from, horizon) = if quick {
        (SimTime::from_secs(8), SimTime::from_secs(14))
    } else {
        (SimTime::from_secs(10), SimTime::from_secs(40))
    };
    let workload = WorkloadSpec {
        clients: spec.clients,
        keys: if spec.target_group.is_some() { 256 } else { 4096 },
        zipf_theta: 0.99,
        payload_bytes: 64,
        start_at: SimTime::from_secs(5),
        op_timeout: SimDuration::from_secs(2),
        retry_backoff: SimDuration::from_millis(25),
        target_group: spec.target_group,
    };
    let cfg = ShardConfig {
        procs: 3,
        groups: spec.groups,
        seed,
        idle_after: spec.idle_after,
        workload,
    };
    let started = std::time::Instant::now();
    let mut runner = ShardRunner::new(cfg, Vec::new(), raft_factory(sweep_timing()));
    runner.set_measure_window(measure_from, horizon);
    runner.run_until(horizon);
    eprintln!(
        "shard_sweep: cell {:<10} {:>7.1}s wall, {} events",
        spec.label,
        started.elapsed().as_secs_f64(),
        runner.metrics().events_total,
    );
    assert!(
        runner.violations().is_empty(),
        "cell {}: commit agreement violated: {:?}",
        spec.label,
        runner.violations()
    );
    let m = runner.metrics();
    let secs = horizon.saturating_since(measure_from).as_secs_f64();
    SweepCell {
        label: spec.label.to_string(),
        groups: spec.groups,
        tput: m.completed_window as f64 / secs,
        mean_ms: if m.completed_window == 0 {
            0.0
        } else {
            m.latency_window_us as f64 / m.completed_window as f64 / 1e3
        },
        events: m.events_window,
        frames: m.frames_window,
        group_msgs: m.group_msgs_window,
        parks: m.parks,
        parked_at_end: runner.parked_groups(),
        wheel_len: runner.wheel_len(),
    }
}

/// Runs the whole sweep for one seed.
///
/// # Panics
///
/// Panics when any cell violates commit agreement, when throughput fails
/// to rise monotonically across the scaling cells, or when the idle cell
/// falls outside 10% of the alone cell.
pub fn run(seed: u64, quick: bool) -> ShardSweepResult {
    let clients = if quick { 96 } else { 256 };
    let hib = SimDuration::from_secs(1);
    let scaling: Vec<SweepCell> = [1u32, 16, 256]
        .iter()
        .map(|&groups| {
            run_cell(
                seed,
                quick,
                &CellSpec {
                    label: match groups {
                        1 => "g1",
                        16 => "g16",
                        _ => "g256",
                    },
                    groups,
                    clients,
                    idle_after: hib,
                    target_group: None,
                },
            )
        })
        .collect();

    let idle_clients = 48;
    let alone = run_cell(
        seed,
        quick,
        &CellSpec {
            label: "alone",
            groups: 1,
            clients: idle_clients,
            idle_after: hib,
            target_group: Some(GroupId(0)),
        },
    );
    let idle = run_cell(
        seed,
        quick,
        &CellSpec {
            label: "idle4096",
            groups: 4097,
            clients: idle_clients,
            idle_after: hib,
            target_group: Some(GroupId(0)),
        },
    );
    let no_hibernate = run_cell(
        seed,
        quick,
        &CellSpec {
            label: "nohib4096",
            groups: 4097,
            clients: idle_clients,
            idle_after: SimDuration::ZERO,
            target_group: Some(GroupId(0)),
        },
    );

    let result = ShardSweepResult {
        scaling,
        alone,
        idle,
        no_hibernate,
    };
    result.check();
    result
}

impl ShardSweepResult {
    /// Acceptance assertions (also enforced by the bench binary).
    pub fn check(&self) {
        for w in self.scaling.windows(2) {
            assert!(
                w[1].tput > w[0].tput,
                "throughput not monotone: {} = {:.1} ops/s !> {} = {:.1} ops/s",
                w[1].label,
                w[1].tput,
                w[0].label,
                w[0].tput
            );
        }
        assert!(
            self.idle.tput >= 0.9 * self.alone.tput,
            "4096 idle groups cost more than 10%: idle {:.1} vs alone {:.1} ops/s",
            self.idle.tput,
            self.alone.tput
        );
        assert!(
            self.idle.parks >= 4096,
            "hibernation failed to park the idle fleet: {} parks",
            self.idle.parks
        );
        assert_eq!(
            self.no_hibernate.parks, 0,
            "hibernation-off cell parked groups"
        );
        assert!(
            self.no_hibernate.events > self.idle.events,
            "parking saved no events: {} !> {}",
            self.no_hibernate.events,
            self.idle.events
        );
    }

    /// Idle-cost ratio: parked fleet throughput over alone throughput
    /// (≈ 1.0 when idle groups are free).
    pub fn idle_tput_ratio(&self) -> f64 {
        self.idle.tput / self.alone.tput.max(1e-9)
    }

    /// Event efficiency: alone-cell events over idle-cell events inside
    /// the window (≈ 1.0 when parked groups dispatch nothing).
    pub fn idle_event_efficiency(&self) -> f64 {
        self.alone.events as f64 / self.idle.events.max(1) as f64
    }

    /// Events the hibernation gate removes: hibernation-off events over
    /// hibernation-on events for the same fleet (≫ 1).
    pub fn hibernate_event_saving(&self) -> f64 {
        self.no_hibernate.events as f64 / self.idle.events.max(1) as f64
    }

    /// Frame coalescing in the widest scaling cell (≥ 1.0).
    pub fn coalesce_widest(&self) -> f64 {
        let c = self.scaling.last().expect("scaling cells present");
        c.group_msgs as f64 / c.frames.max(1) as f64
    }

    /// The gated series, shaped for `bench_compare`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"shard_sweep\",\n  \"series\": {\n");
        for c in &self.scaling {
            s.push_str(&format!("    \"tput_{}\": {:.2},\n", c.label, c.tput));
        }
        s.push_str(&format!(
            "    \"idle_tput_ratio\": {:.4},\n",
            self.idle_tput_ratio()
        ));
        s.push_str(&format!(
            "    \"idle_event_efficiency\": {:.4},\n",
            self.idle_event_efficiency()
        ));
        s.push_str(&format!(
            "    \"hibernate_event_saving\": {:.2},\n",
            self.hibernate_event_saving()
        ));
        s.push_str(&format!(
            "    \"coalesce_g256\": {:.4}\n",
            self.coalesce_widest()
        ));
        s.push_str("  }\n}\n");
        s
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "shard_sweep: multi-group fabric (3 procs, Zipf 0.99, 32-entry append budget)\n\
             cell        groups    ops/s   mean ms     events    frames  msgs/frame  parked\n",
        );
        let all = self
            .scaling
            .iter()
            .chain([&self.alone, &self.idle, &self.no_hibernate]);
        for c in all {
            s.push_str(&format!(
                "{:<11} {:>6} {:>8.1} {:>9.2} {:>10} {:>9} {:>11.3} {:>7}\n",
                c.label,
                c.groups,
                c.tput,
                c.mean_ms,
                c.events,
                c.frames,
                c.group_msgs as f64 / c.frames.max(1) as f64,
                c.parked_at_end,
            ));
        }
        s.push_str(&format!(
            "idle ratio {:.3}  event efficiency {:.3}  hibernate saving {:.1}x\n",
            self.idle_tput_ratio(),
            self.idle_event_efficiency(),
            self.hibernate_event_saving()
        ));
        s
    }
}
