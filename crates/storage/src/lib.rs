//! # `storage` — stable storage with crash/recovery semantics
//!
//! Implements the paper's §II assumption that every site has stable storage
//! readable on recovery. Protocol cores emit [`wire::PersistCmd`] write-ahead
//! commands; the embedding applies them to a [`StableState`] (per site,
//! collected in a [`SimDisk`]) **before** releasing the same step's outgoing
//! messages. A crash loses exactly the volatile state: a recovering node is
//! rebuilt from its [`StableState`] alone.
//!
//! # Examples
//!
//! ```
//! use storage::{SimDisk, StableState};
//! use wire::{LogScope, NodeId, PersistCmd, Term};
//!
//! let mut disk = SimDisk::new();
//! disk.apply(NodeId(7), &[PersistCmd::SetTermVote { scope: LogScope::Global, term: Term(1), voted_for: Some(NodeId(7)) }]);
//! let recovered: StableState = disk.read(NodeId(7)).unwrap().clone();
//! assert_eq!(recovered.global.voted_for, Some(NodeId(7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod disk;
mod stable;

pub use batch::PersistBatch;
pub use disk::SimDisk;
pub use stable::{ScopeState, StableState};
