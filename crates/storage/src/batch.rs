//! Group commit: one fsync boundary covering many write-ahead commands.
//!
//! The write-ahead contract says every [`PersistCmd`] a protocol step emits
//! must be durable *before* that step's messages leave the site — but it
//! says nothing about each command being its own fsync. A [`PersistBatch`]
//! is the unit that actually hits the disk: all commands emitted within one
//! tick (one handler invocation) coalesce into a single batch, applied
//! atomically by [`StableState::apply_batch`](crate::StableState::apply_batch)
//! and charged **one** fsync in the accounting (`persist_batches`), however
//! many commands (`cmds_applied`) it carries.
//!
//! Under load a leader tick inserts an entry, reserves proposal ids, and
//! stamps term/vote state; a follower tick inserts every entry of an
//! AppendEntries payload. Group commit turns those N boundaries into one —
//! the measured win in `BENCH_commit.json`.

use wire::PersistCmd;

/// An ordered group of write-ahead commands forming one fsync boundary.
///
/// Commands within a batch apply in emission order (order matters: an
/// insert-then-truncate differs from truncate-then-insert), and the batch
/// becomes durable as a unit. The DES crash model may still interrupt a
/// batch mid-way — a torn batch is a *prefix* of its commands, never a
/// reordering — which is exactly the crash window the recovery tests pin.
///
/// # Examples
///
/// ```
/// use storage::{PersistBatch, StableState};
/// use wire::{LogScope, PersistCmd, Term};
///
/// let batch: PersistBatch = [PersistCmd::SetTermVote {
///     scope: LogScope::Global,
///     term: Term(2),
///     voted_for: None,
/// }]
/// .into_iter()
/// .collect();
/// let mut state = StableState::new();
/// state.apply_batch(&batch);
/// assert_eq!(state.persist_batches(), 1);
/// assert_eq!(state.cmds_applied(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PersistBatch {
    cmds: Vec<PersistCmd>,
}

impl PersistBatch {
    /// An empty batch (applying it is a no-op and charges no fsync).
    pub fn new() -> Self {
        PersistBatch::default()
    }

    /// Wraps already-collected commands as one batch. O(1): the vector is
    /// moved, not copied — the runner drains a tick's `Actions::persists`
    /// straight into the batch.
    pub fn from_cmds(cmds: Vec<PersistCmd>) -> Self {
        PersistBatch { cmds }
    }

    /// Appends a command to the batch.
    pub fn push(&mut self, cmd: PersistCmd) {
        self.cmds.push(cmd);
    }

    /// Number of commands in the batch.
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// `true` when the batch carries no commands.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// The commands, in application order.
    pub fn cmds(&self) -> &[PersistCmd] {
        &self.cmds
    }

    /// Iterates the commands in application order.
    pub fn iter(&self) -> core::slice::Iter<'_, PersistCmd> {
        self.cmds.iter()
    }

    /// The first `n` commands as their own batch — the torn-write prefix a
    /// mid-batch crash leaves behind in the DES model.
    pub fn prefix(&self, n: usize) -> PersistBatch {
        PersistBatch {
            cmds: self.cmds[..n.min(self.cmds.len())].to_vec(),
        }
    }
}

impl FromIterator<PersistCmd> for PersistBatch {
    fn from_iter<I: IntoIterator<Item = PersistCmd>>(iter: I) -> Self {
        PersistBatch {
            cmds: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a PersistBatch {
    type Item = &'a PersistCmd;
    type IntoIter = core::slice::Iter<'a, PersistCmd>;
    fn into_iter(self) -> Self::IntoIter {
        self.cmds.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{LogScope, Term};

    fn set_term(t: u64) -> PersistCmd {
        PersistCmd::SetTermVote {
            scope: LogScope::Global,
            term: Term(t),
            voted_for: None,
        }
    }

    #[test]
    fn batch_builds_and_iterates_in_order() {
        let mut b = PersistBatch::new();
        assert!(b.is_empty());
        b.push(set_term(1));
        b.push(set_term(2));
        assert_eq!(b.len(), 2);
        let terms: Vec<_> = b
            .iter()
            .map(|c| match c {
                PersistCmd::SetTermVote { term, .. } => term.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(terms, vec![1, 2]);
    }

    #[test]
    fn prefix_models_torn_batches() {
        let b: PersistBatch = (1..=3).map(set_term).collect();
        assert_eq!(b.prefix(2).len(), 2);
        assert_eq!(b.prefix(0).len(), 0);
        assert_eq!(b.prefix(99), b);
        assert_eq!(b.prefix(2).cmds(), &b.cmds()[..2]);
    }
}
