//! A site's stable storage contents.
//!
//! The paper's persistent state (§IV-A): `currentTerm`, `votedFor`, and the
//! log(s). Protocol nodes never mutate this directly — they emit
//! [`PersistCmd`]s (write-ahead commands) which the embedding applies here
//! *before* releasing the messages produced in the same step. Crash recovery
//! rebuilds a node from a [`StableState`] snapshot alone; everything else
//! (commit index, leader volatile state) is relearned from the protocol.
//!
//! C-Raft sites participate in **two** consensus levels (intra- and
//! inter-cluster, §V-B) with independent terms, votes, and logs; storage is
//! therefore scoped by [`LogScope`].

use wire::{LogScope, NodeId, PersistCmd, Snapshot, SparseLog, Term};

use crate::PersistBatch;

/// Persistent state for one consensus level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScopeState {
    /// Latest term this site has seen at this level.
    pub current_term: Term,
    /// Candidate voted for in `current_term`, if any.
    pub voted_for: Option<NodeId>,
    /// The replicated log at this level. When `snapshot` is set, the log
    /// holds only the suffix above the snapshot's `last_index`; recovery
    /// rebuilds the node from snapshot + suffix.
    pub log: SparseLog,
    /// The latest snapshot covering the compacted prefix, if any.
    pub snapshot: Option<Snapshot>,
    /// One past the highest [`wire::EntryId`] sequence number this site has
    /// reserved at this level; recovery restarts the proposal counter here
    /// so a rebuilt node never re-mints a pre-crash id (which peers would
    /// dedup against the *old* entry, silently dropping the new proposal).
    pub proposal_seq_floor: u64,
}

/// Everything a site keeps in stable storage.
///
/// Equality compares the *durable contents* (both scopes) and ignores the
/// fsync accounting: a batched and an unbatched execution of the same
/// command stream produce equal `StableState`s even though their
/// `persist_batches` counts differ. The recovery tests lean on this.
#[derive(Clone, Debug, Default)]
pub struct StableState {
    /// Global (system-wide) consensus state.
    pub global: ScopeState,
    /// Cluster-local consensus state (C-Raft only; empty otherwise).
    pub local: ScopeState,
    persist_batches: u64,
    cmds_applied: u64,
    entries_written: u64,
}

impl PartialEq for StableState {
    fn eq(&self, other: &Self) -> bool {
        self.global == other.global && self.local == other.local
    }
}

impl Eq for StableState {}

impl StableState {
    /// Fresh, empty storage for a new site.
    pub fn new() -> Self {
        StableState::default()
    }

    /// The state for `scope`.
    pub fn scope(&self, scope: LogScope) -> &ScopeState {
        match scope {
            LogScope::Global => &self.global,
            LogScope::Local => &self.local,
        }
    }

    /// Mutable state for `scope`.
    pub fn scope_mut(&mut self, scope: LogScope) -> &mut ScopeState {
        match scope {
            LogScope::Global => &mut self.global,
            LogScope::Local => &mut self.local,
        }
    }

    /// The log for `scope` (convenience).
    pub fn log(&self, scope: LogScope) -> &SparseLog {
        &self.scope(scope).log
    }

    /// Applies one write-ahead command as its own fsync boundary.
    ///
    /// Equivalent to applying a singleton [`PersistBatch`]: charges one
    /// `persist_batches` and one `cmds_applied`. The batched write path goes
    /// through [`StableState::apply_batch`] instead.
    pub fn apply(&mut self, cmd: &PersistCmd) {
        self.persist_batches += 1;
        self.cmds_applied += 1;
        self.apply_cmd(cmd);
    }

    /// Applies one atomic batch: all commands in order, **one** fsync charge.
    ///
    /// An empty batch is a no-op (no fsync happens for a tick that persisted
    /// nothing, so none is counted).
    pub fn apply_batch(&mut self, batch: &PersistBatch) {
        if batch.is_empty() {
            return;
        }
        self.persist_batches += 1;
        self.cmds_applied += batch.len() as u64;
        for cmd in batch {
            self.apply_cmd(cmd);
        }
    }

    fn apply_cmd(&mut self, cmd: &PersistCmd) {
        match cmd {
            PersistCmd::SetTermVote {
                scope,
                term,
                voted_for,
            } => {
                let s = self.scope_mut(*scope);
                s.current_term = *term;
                s.voted_for = *voted_for;
            }
            PersistCmd::Insert {
                scope,
                index,
                entry,
            } => {
                self.scope_mut(*scope).log.insert(*index, entry.clone());
                self.entries_written += 1;
            }
            PersistCmd::Truncate { scope, from } => {
                self.scope_mut(*scope).log.truncate_from(*from);
            }
            PersistCmd::InstallSnapshot { snapshot } => {
                let s = self.scope_mut(snapshot.scope);
                if s.log
                    .install_snapshot(snapshot.last_index, snapshot.last_term)
                {
                    s.snapshot = Some(snapshot.clone());
                }
            }
            PersistCmd::ReserveProposalSeqs { scope, through } => {
                let s = self.scope_mut(*scope);
                s.proposal_seq_floor = s.proposal_seq_floor.max(*through);
            }
        }
    }

    /// Applies commands in order, each as its own fsync boundary.
    ///
    /// This is the *unbatched* write path (one fsync per command) the group
    /// commit in [`StableState::apply_batch`] is measured against. The final
    /// storage contents are identical either way — only the accounting
    /// differs.
    pub fn apply_all<'a>(&mut self, cmds: impl IntoIterator<Item = &'a PersistCmd>) {
        for cmd in cmds {
            self.apply(cmd);
        }
    }

    /// Number of fsync boundaries: batches applied via
    /// [`StableState::apply_batch`] count once regardless of size.
    pub fn persist_batches(&self) -> u64 {
        self.persist_batches
    }

    /// Total write-ahead commands applied, across all batches.
    pub fn cmds_applied(&self) -> u64 {
        self.cmds_applied
    }

    /// Number of log entries written (insertions, counting overwrites).
    pub fn entries_written(&self) -> u64 {
        self.entries_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wire::{EntryId, LogEntry, LogIndex};

    fn entry(term: u64, seq: u64) -> LogEntry {
        LogEntry::data(
            Term(term),
            EntryId::new(NodeId(1), seq),
            Bytes::from_static(b"v"),
        )
    }

    #[test]
    fn term_votes_are_scoped() {
        let mut s = StableState::new();
        s.apply(&PersistCmd::SetTermVote {
            scope: LogScope::Global,
            term: Term(3),
            voted_for: Some(NodeId(2)),
        });
        s.apply(&PersistCmd::SetTermVote {
            scope: LogScope::Local,
            term: Term(7),
            voted_for: None,
        });
        assert_eq!(s.global.current_term, Term(3));
        assert_eq!(s.global.voted_for, Some(NodeId(2)));
        assert_eq!(s.local.current_term, Term(7));
        assert_eq!(s.local.voted_for, None);
        assert_eq!(s.persist_batches(), 2);
        assert_eq!(s.cmds_applied(), 2);
    }

    #[test]
    fn insert_routes_by_scope() {
        let mut s = StableState::new();
        s.apply(&PersistCmd::Insert {
            scope: LogScope::Global,
            index: LogIndex(1),
            entry: entry(1, 0),
        });
        s.apply(&PersistCmd::Insert {
            scope: LogScope::Local,
            index: LogIndex(1),
            entry: entry(1, 1),
        });
        assert_eq!(s.global.log.len(), 1);
        assert_eq!(s.local.log.len(), 1);
        assert_eq!(s.log(LogScope::Global).len(), 1);
        assert_eq!(s.entries_written(), 2);
    }

    #[test]
    fn truncate_only_touches_scope() {
        let mut s = StableState::new();
        for i in 1..=3u64 {
            s.apply(&PersistCmd::Insert {
                scope: LogScope::Global,
                index: LogIndex(i),
                entry: entry(1, i),
            });
            s.apply(&PersistCmd::Insert {
                scope: LogScope::Local,
                index: LogIndex(i),
                entry: entry(1, 10 + i),
            });
        }
        s.apply(&PersistCmd::Truncate {
            scope: LogScope::Global,
            from: LogIndex(2),
        });
        assert_eq!(s.global.log.len(), 1);
        assert_eq!(s.local.log.len(), 3);
    }

    #[test]
    fn install_snapshot_compacts_and_records() {
        use wire::Snapshot;
        let mut s = StableState::new();
        for i in 1..=4u64 {
            s.apply(&PersistCmd::Insert {
                scope: LogScope::Global,
                index: LogIndex(i),
                entry: entry(1, i),
            });
        }
        let snap = Snapshot {
            scope: LogScope::Global,
            last_index: LogIndex(3),
            last_term: Term(1),
            config: wire::Configuration::new([NodeId(1)]),
            state: Snapshot::digest_state(7),
            sessions: wire::SessionTable::new(),
        };
        s.apply(&PersistCmd::InstallSnapshot {
            snapshot: snap.clone(),
        });
        assert_eq!(s.global.snapshot.as_ref(), Some(&snap));
        assert_eq!(s.global.log.first_index(), LogIndex(4));
        assert_eq!(s.global.log.len(), 1, "consistent suffix retained");
        assert!(s.local.snapshot.is_none());
        // A stale snapshot neither compacts nor replaces the stored one.
        let stale = Snapshot {
            last_index: LogIndex(2),
            ..snap.clone()
        };
        s.apply(&PersistCmd::InstallSnapshot { snapshot: stale });
        assert_eq!(s.global.snapshot.as_ref(), Some(&snap));
    }

    #[test]
    fn proposal_seq_reservation_is_scoped_and_monotonic() {
        let mut s = StableState::new();
        s.apply(&PersistCmd::ReserveProposalSeqs {
            scope: LogScope::Global,
            through: 64,
        });
        s.apply(&PersistCmd::ReserveProposalSeqs {
            scope: LogScope::Local,
            through: 128,
        });
        assert_eq!(s.global.proposal_seq_floor, 64);
        assert_eq!(s.local.proposal_seq_floor, 128);
        // A stale (lower) reservation never lowers the floor.
        s.apply(&PersistCmd::ReserveProposalSeqs {
            scope: LogScope::Global,
            through: 32,
        });
        assert_eq!(s.global.proposal_seq_floor, 64);
    }

    #[test]
    fn apply_all_preserves_order() {
        let mut s = StableState::new();
        s.apply_all(&[
            PersistCmd::Insert {
                scope: LogScope::Global,
                index: LogIndex(1),
                entry: entry(1, 0),
            },
            PersistCmd::Truncate {
                scope: LogScope::Global,
                from: LogIndex(1),
            },
        ]);
        assert!(s.global.log.is_empty());
        // Reversed order yields a different outcome.
        let mut s2 = StableState::new();
        s2.apply_all(&[
            PersistCmd::Truncate {
                scope: LogScope::Global,
                from: LogIndex(1),
            },
            PersistCmd::Insert {
                scope: LogScope::Global,
                index: LogIndex(1),
                entry: entry(1, 0),
            },
        ]);
        assert_eq!(s2.global.log.len(), 1);
    }

    #[test]
    fn batched_apply_matches_unbatched_contents_but_not_fsyncs() {
        let cmds: Vec<PersistCmd> = (1..=5u64)
            .map(|i| PersistCmd::Insert {
                scope: LogScope::Global,
                index: LogIndex(i),
                entry: entry(1, i),
            })
            .chain([PersistCmd::SetTermVote {
                scope: LogScope::Global,
                term: Term(1),
                voted_for: Some(NodeId(1)),
            }])
            .collect();

        let mut unbatched = StableState::new();
        unbatched.apply_all(&cmds);
        let mut batched = StableState::new();
        batched.apply_batch(&cmds.iter().cloned().collect::<PersistBatch>());

        // Identical durable contents (equality ignores fsync accounting)...
        assert_eq!(batched, unbatched);
        assert_eq!(batched.entries_written(), unbatched.entries_written());
        assert_eq!(batched.cmds_applied(), unbatched.cmds_applied());
        // ...but one fsync boundary instead of six.
        assert_eq!(unbatched.persist_batches(), 6);
        assert_eq!(batched.persist_batches(), 1);
    }

    #[test]
    fn empty_batch_charges_no_fsync() {
        let mut s = StableState::new();
        s.apply_batch(&PersistBatch::new());
        assert_eq!(s.persist_batches(), 0);
        assert_eq!(s.cmds_applied(), 0);
        assert_eq!(s, StableState::new());
    }
}
