//! The simulated disk farm: one [`StableState`] per site.
//!
//! Models the paper's assumption that "each site has a means of stable
//! storage that can be read from upon recovery" (§II). A crash destroys a
//! node's volatile state; the harness rebuilds the node from the state held
//! here. Wiping a site's storage models a *permanent* departure (the site
//! could only return as a fresh joiner).

use std::collections::HashMap;

use wire::{NodeId, PersistCmd};

use crate::{PersistBatch, StableState};

/// Stable storage for a whole simulated deployment.
///
/// # Examples
///
/// ```
/// use storage::SimDisk;
/// use wire::{NodeId, PersistCmd, Term};
///
/// let mut disk = SimDisk::new();
/// disk.apply(NodeId(1), &[PersistCmd::SetTermVote { scope: wire::LogScope::Global, term: Term(2), voted_for: None }]);
/// assert_eq!(disk.read(NodeId(1)).unwrap().global.current_term, Term(2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimDisk {
    states: HashMap<NodeId, StableState>,
}

impl SimDisk {
    /// An empty disk farm.
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Provisions empty storage for `node` if it has none yet.
    pub fn provision(&mut self, node: NodeId) -> &mut StableState {
        self.states.entry(node).or_default()
    }

    /// Reads a site's stable state, if the site has storage.
    pub fn read(&self, node: NodeId) -> Option<&StableState> {
        self.states.get(&node)
    }

    /// Applies write-ahead commands for `node`, provisioning on first write.
    ///
    /// Each command is its own fsync boundary — the unbatched write path.
    /// Group commit goes through [`SimDisk::apply_batch`].
    pub fn apply<'a>(&mut self, node: NodeId, cmds: impl IntoIterator<Item = &'a PersistCmd>) {
        self.provision(node).apply_all(cmds);
    }

    /// Applies one atomic [`PersistBatch`] for `node` — a single fsync
    /// boundary covering every command — provisioning on first write.
    pub fn apply_batch(&mut self, node: NodeId, batch: &PersistBatch) {
        self.provision(node).apply_batch(batch);
    }

    /// Destroys a site's storage (permanent departure).
    ///
    /// Returns the final state, if any existed.
    pub fn wipe(&mut self, node: NodeId) -> Option<StableState> {
        self.states.remove(&node)
    }

    /// Number of provisioned sites.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if no site has storage.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total fsync boundaries across all sites.
    pub fn total_persist_batches(&self) -> u64 {
        self.states.values().map(StableState::persist_batches).sum()
    }

    /// Total write-ahead commands applied across all sites.
    pub fn total_cmds_applied(&self) -> u64 {
        self.states.values().map(StableState::cmds_applied).sum()
    }

    /// Iterates `(node, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &StableState)> {
        self.states.iter().map(|(&n, s)| (n, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{LogIndex, LogScope, Term};

    #[test]
    fn provision_is_idempotent() {
        let mut d = SimDisk::new();
        d.provision(NodeId(1)).apply(&PersistCmd::SetTermVote {
            scope: LogScope::Global,
            term: Term(5),
            voted_for: None,
        });
        d.provision(NodeId(1));
        assert_eq!(d.read(NodeId(1)).unwrap().global.current_term, Term(5));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn apply_provisions_on_demand() {
        let mut d = SimDisk::new();
        assert!(d.read(NodeId(3)).is_none());
        d.apply(
            NodeId(3),
            &[PersistCmd::SetTermVote {
                scope: LogScope::Global,
                term: Term(1),
                voted_for: Some(NodeId(3)),
            }],
        );
        assert_eq!(d.read(NodeId(3)).unwrap().global.voted_for, Some(NodeId(3)));
    }

    #[test]
    fn wipe_destroys_state() {
        let mut d = SimDisk::new();
        d.provision(NodeId(1));
        assert!(d.wipe(NodeId(1)).is_some());
        assert!(d.read(NodeId(1)).is_none());
        assert!(d.wipe(NodeId(1)).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn crash_recovery_preserves_stable_only() {
        use bytes::Bytes;
        use wire::{EntryId, LogEntry};
        let mut d = SimDisk::new();
        let entry = LogEntry::data(
            Term(1),
            EntryId::new(NodeId(1), 0),
            Bytes::from_static(b"v"),
        );
        d.apply(
            NodeId(1),
            &[
                PersistCmd::SetTermVote {
                    scope: LogScope::Global,
                    term: Term(1),
                    voted_for: Some(NodeId(1)),
                },
                PersistCmd::Insert {
                    scope: LogScope::Global,
                    index: LogIndex(1),
                    entry,
                },
            ],
        );
        // "Crash": clone what a recovering node would read.
        let recovered = d.read(NodeId(1)).unwrap().clone();
        assert_eq!(recovered.global.current_term, Term(1));
        assert_eq!(recovered.global.log.len(), 1);
        // commitIndex is volatile: StableState has no such field at all,
        // which is the type-level statement of §IV-A's volatility note.
    }

    #[test]
    fn fsync_accounting_aggregates() {
        let mut d = SimDisk::new();
        // Unbatched: one fsync per command.
        d.apply(
            NodeId(1),
            &[PersistCmd::SetTermVote {
                scope: LogScope::Global,
                term: Term(1),
                voted_for: None,
            }],
        );
        // Batched: two commands, one fsync boundary.
        let batch: PersistBatch = [
                PersistCmd::SetTermVote {
                    scope: LogScope::Global,
                    term: Term(1),
                    voted_for: None,
                },
                PersistCmd::SetTermVote {
                    scope: LogScope::Global,
                    term: Term(2),
                    voted_for: None,
                },
        ]
        .into_iter()
        .collect();
        d.apply_batch(NodeId(2), &batch);
        assert_eq!(d.total_cmds_applied(), 3);
        assert_eq!(d.total_persist_batches(), 2);
        assert_eq!(d.iter().count(), 2);
        assert_eq!(d.read(NodeId(2)).unwrap().global.current_term, Term(2));
    }
}
