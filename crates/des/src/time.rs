//! Simulated time.
//!
//! The simulator measures time in **microseconds** stored in a `u64`. That
//! gives ~584,000 years of range, far beyond any experiment, while keeping
//! arithmetic exact (no floating point drift) and ordering total.
//!
//! [`SimTime`] is an *instant* (microseconds since simulation start) and
//! [`SimDuration`] is a *span*. The two are distinct newtypes so that adding
//! two instants is a compile error, mirroring `std::time`.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time: microseconds since the simulation epoch.
///
/// # Examples
///
/// ```
/// use des::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
///
/// # Examples
///
/// ```
/// use des::SimDuration;
///
/// assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_micros(6_000));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics on overflow (only possible beyond ~584,000 simulated years).
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is after `self`, matching
    /// the saturating behaviour of `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a span to this instant.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// A span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// A span from a float of seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Length of the span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length of the span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length of the span in milliseconds as a float, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length of the span in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a float factor, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(50));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(150));
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0015), SimDuration::from_micros(1_500));
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn subtracting_past_epoch_panics() {
        let _ = SimTime::ZERO - SimDuration::from_micros(1);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.500s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(1),
                SimTime::from_millis(3)
            ]
        );
    }
}
