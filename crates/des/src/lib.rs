//! # `des` — deterministic discrete-event simulation kernel
//!
//! The substrate underneath every experiment in this workspace. It provides:
//!
//! - [`SimTime`] / [`SimDuration`]: exact microsecond-resolution virtual time;
//! - [`EventQueue`]: a priority queue with **total, deterministic ordering**
//!   (ties broken by scheduling order) and O(1) amortized cancellation;
//! - [`SimRng`]: seeded randomness with labelled [`SimRng::split`]ting so
//!   component streams stay independent as the code evolves;
//! - [`Simulation`]: clock + queue + RNG with a step-limit livelock guard;
//! - [`TraceBuffer`]: bounded trace capture for debugging runs.
//!
//! Determinism is the design center: the same seed must reproduce the same
//! run bit-for-bit, because the consensus-safety test suite relies on
//! replaying schedules that exhibit rare interleavings.
//!
//! # Examples
//!
//! ```
//! use des::{SimDuration, Simulation};
//!
//! #[derive(Debug)]
//! struct Arrival(u32);
//!
//! let mut sim = Simulation::new(7);
//! for i in 0..3u64 {
//!     let gap = sim.rng().exponential(SimDuration::from_millis(10));
//!     sim.schedule_after(gap * (i + 1), Arrival(i as u32));
//! }
//! let mut seen = 0;
//! while let Some(firing) = sim.next_event() {
//!     let Arrival(_id) = firing.event;
//!     seen += 1;
//! }
//! assert_eq!(seen, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod rng;
mod sim;
mod time;
mod trace;
mod wheel;

pub use event::{EventId, EventQueue, Firing};
pub use rng::SimRng;
pub use sim::Simulation;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceRecord};
pub use wheel::TimerWheel;
