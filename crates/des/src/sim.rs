//! The simulation driver: clock + event queue + root RNG.

use crate::{EventId, EventQueue, Firing, SimDuration, SimRng, SimTime};

/// A discrete-event simulation: a virtual clock, a deterministic event queue,
/// and a root random number generator.
///
/// The simulation is generic over the event payload `E`. Callers pop events
/// with [`Simulation::next_event`] (which advances the clock) and react to
/// them, scheduling follow-up events. Two runs with the same seed and the
/// same reaction logic produce identical traces.
///
/// # Examples
///
/// ```
/// use des::{SimDuration, Simulation};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut sim = Simulation::new(42);
/// sim.schedule_after(SimDuration::from_millis(1), Ev::Ping);
/// while let Some(firing) = sim.next_event() {
///     if firing.event == Ev::Ping && sim.now().as_millis() < 5 {
///         sim.schedule_after(SimDuration::from_millis(1), Ev::Pong);
///     }
/// }
/// assert_eq!(sim.now().as_millis(), 2);
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    now: SimTime,
    queue: EventQueue<E>,
    rng: SimRng,
    steps: u64,
    step_limit: u64,
}

impl<E> Simulation<E> {
    /// Default ceiling on processed events, a guard against runaway loops.
    pub const DEFAULT_STEP_LIMIT: u64 = 2_000_000_000;

    /// Creates a simulation at time zero from a seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::seed_from_u64(seed),
            steps: 0,
            step_limit: Self::DEFAULT_STEP_LIMIT,
        }
    }

    /// Sets the maximum number of events this simulation may process.
    ///
    /// Exceeding the limit makes [`Simulation::next_event`] panic, turning
    /// livelock bugs into loud failures instead of hung test runs.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The root RNG. Components should [`SimRng::split`] from it rather than
    /// drawing directly, so their streams stay independent.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            time
        );
        self.queue.schedule(time, event)
    }

    /// Schedules an event `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancels a scheduled event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pops the next event, advancing the clock to its firing time.
    ///
    /// Returns `None` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if the step limit is exceeded (see
    /// [`Simulation::set_step_limit`]).
    pub fn next_event(&mut self) -> Option<Firing<E>> {
        let firing = self.queue.pop()?;
        debug_assert!(firing.time >= self.now, "time went backwards");
        self.now = firing.time;
        self.steps += 1;
        assert!(
            self.steps <= self.step_limit,
            "simulation exceeded step limit of {} events (livelock?)",
            self.step_limit
        );
        Some(firing)
    }

    /// Pops the next event only if it fires strictly before `deadline`.
    ///
    /// If the next event is at or after `deadline` (or the queue is empty),
    /// advances the clock to `deadline` and returns `None`. This is the
    /// building block for running an experiment "for 180 simulated seconds".
    pub fn next_event_before(&mut self, deadline: SimTime) -> Option<Firing<E>> {
        match self.queue.peek_time() {
            Some(t) if t < deadline => self.next_event(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut sim = Simulation::new(1);
        sim.schedule_at(SimTime::from_millis(10), Ev::Tick(1));
        sim.schedule_at(SimTime::from_millis(20), Ev::Tick(2));
        let f = sim.next_event().unwrap();
        assert_eq!(f.event, Ev::Tick(1));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        sim.next_event().unwrap();
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert!(sim.next_event().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(1);
        sim.schedule_at(SimTime::from_millis(5), Ev::Tick(1));
        sim.next_event();
        sim.schedule_at(SimTime::from_millis(1), Ev::Tick(2));
    }

    #[test]
    fn next_event_before_respects_deadline() {
        let mut sim = Simulation::new(1);
        sim.schedule_at(SimTime::from_millis(10), Ev::Tick(1));
        sim.schedule_at(SimTime::from_millis(30), Ev::Tick(2));
        let deadline = SimTime::from_millis(20);
        assert!(sim.next_event_before(deadline).is_some());
        assert!(sim.next_event_before(deadline).is_none());
        // Clock parked exactly at the deadline; later event still pending.
        assert_eq!(sim.now(), deadline);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn next_event_before_on_empty_queue_advances_clock() {
        let mut sim: Simulation<Ev> = Simulation::new(1);
        assert!(sim.next_event_before(SimTime::from_secs(3)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn deterministic_under_same_seed() {
        fn run(seed: u64) -> Vec<(u64, u32)> {
            let mut sim = Simulation::new(seed);
            sim.schedule_after(SimDuration::from_millis(1), Ev::Tick(0));
            let mut out = Vec::new();
            let mut hops = 0;
            while let Some(f) = sim.next_event() {
                let Ev::Tick(n) = f.event;
                out.push((sim.now().as_micros(), n));
                hops += 1;
                if hops < 50 {
                    let jitter = sim.rng().duration_between(
                        SimDuration::from_micros(10),
                        SimDuration::from_micros(1000),
                    );
                    sim.schedule_after(jitter, Ev::Tick(n + 1));
                }
            }
            out
        }
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    #[should_panic(expected = "step limit")]
    fn step_limit_catches_livelock() {
        let mut sim = Simulation::new(1);
        sim.set_step_limit(100);
        sim.schedule_after(SimDuration::from_micros(1), Ev::Tick(0));
        while let Some(_f) = sim.next_event() {
            sim.schedule_after(SimDuration::from_micros(1), Ev::Tick(0));
        }
    }

    #[test]
    fn cancel_through_sim() {
        let mut sim = Simulation::new(1);
        let id = sim.schedule_after(SimDuration::from_millis(1), Ev::Tick(1));
        assert!(sim.cancel(id));
        assert!(sim.next_event().is_none());
        assert!(sim.is_idle());
    }
}
