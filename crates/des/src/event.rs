//! The simulation event queue.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number is assigned
//! at scheduling time, which makes ordering *total and deterministic*: two
//! events scheduled for the same instant fire in the order they were
//! scheduled. Determinism of the whole simulator rests on this property.
//!
//! Events can be cancelled in O(1) amortized via [`EventQueue::cancel`]
//! (tombstoning); cancelled entries are skipped on pop.

use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use crate::SimTime;

/// Handle identifying a scheduled event, used for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number, mostly useful in traces.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// An event popped from the queue: when it fires and its payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Firing<E> {
    /// The instant the event fires; the simulation clock advances to this.
    pub time: SimTime,
    /// Scheduling handle (matches the value returned by `schedule`).
    pub id: EventId,
    /// The event payload.
    pub event: E,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest (time, seq) first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
///
/// # Examples
///
/// ```
/// use des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// assert_eq!(q.pop().unwrap().event, "a");
/// assert_eq!(q.pop().unwrap().event, "b");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Sequence counter; also serves as EventId allocator.
    next_seq: u64,
    /// Tombstones for cancelled events still physically in the heap.
    cancelled: HashMap<u64, ()>,
    /// Number of live (non-cancelled) events.
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashMap::new(),
            live: 0,
        }
    }

    /// Schedules `event` to fire at `time`, returning a cancellation handle.
    ///
    /// Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        self.live += 1;
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was live (now cancelled); `false` if it
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        match self.cancelled.entry(id.0) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                // The id may have fired already; we cannot tell without a
                // per-id liveness map. Track live count optimistically: pop
                // reconciles by skipping tombstones.
                v.insert(());
                if self.live > 0 {
                    self.live -= 1;
                }
                true
            }
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<Firing<E>> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.seq).is_some() {
                continue;
            }
            self.live = self.live.saturating_sub(1);
            return Some(Firing {
                time: s.time,
                id: EventId(s.seq),
                event: s.event,
            });
        }
        None
    }

    /// The firing time of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = self.heap.peek()?.seq;
            if self.cancelled.contains_key(&seq) {
                self.cancelled.remove(&seq);
                self.heap.pop();
                continue;
            }
            return Some(self.heap.peek().expect("peeked above").time);
        }
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if there are no live events.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn orders_by_time_first() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), "late");
        q.schedule(SimTime::from_millis(1), "early");
        q.schedule(SimTime::from_millis(2), "mid");
        assert_eq!(q.pop().unwrap().event, "early");
        assert_eq!(q.pop().unwrap().event, "mid");
        assert_eq!(q.pop().unwrap().event, "late");
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::ZERO, 1);
        let _b = q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 10);
        q.schedule(SimTime::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().event, 5);
        q.schedule(SimTime::from_millis(7), 7);
        q.schedule(SimTime::from_millis(6), 6);
        assert_eq!(q.pop().unwrap().event, 6);
        assert_eq!(q.pop().unwrap().event, 7);
        assert_eq!(q.pop().unwrap().event, 10);
    }
}
