//! Bounded trace capture for debugging simulation runs.
//!
//! Protocol bugs in a discrete-event simulation are diagnosed from traces.
//! [`TraceBuffer`] is a cheap, bounded, optionally-disabled recorder: when
//! disabled, recording is a branch and nothing else, so traces can be left
//! compiled into hot paths.

use std::collections::VecDeque;
use std::fmt;

use crate::SimTime;

/// One recorded trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the record was emitted.
    pub time: SimTime,
    /// Which component emitted it (e.g. a node id rendered as a string).
    pub scope: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.scope, self.message)
    }
}

/// A bounded ring buffer of trace records.
///
/// # Examples
///
/// ```
/// use des::{SimTime, TraceBuffer};
///
/// let mut trace = TraceBuffer::with_capacity(2);
/// trace.record(SimTime::ZERO, "n1", "hello");
/// trace.record(SimTime::ZERO, "n1", "world");
/// trace.record(SimTime::ZERO, "n2", "evicts-oldest");
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().next().unwrap().message, "world");
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl TraceBuffer {
    /// Creates an enabled buffer holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// Creates a disabled buffer; records are counted but not stored.
    pub fn disabled() -> Self {
        let mut t = Self::with_capacity(0);
        t.enabled = false;
        t
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// `true` if records are being stored.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a message, evicting the oldest record when full.
    pub fn record(&mut self, time: SimTime, scope: impl Into<String>, message: impl Into<String>) {
        if !self.enabled {
            self.dropped += 1;
            return;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            scope: scope.into(),
            message: message.into(),
        });
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records dropped (evicted or suppressed while disabled).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates stored records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Renders all stored records, one per line — handy in test failures.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// Removes all stored records (drop counter is preserved).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = TraceBuffer::with_capacity(10);
        t.record(SimTime::from_millis(1), "a", "first");
        t.record(SimTime::from_millis(2), "b", "second");
        let msgs: Vec<&str> = t.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, ["first", "second"]);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut t = TraceBuffer::with_capacity(2);
        t.record(SimTime::ZERO, "s", "1");
        t.record(SimTime::ZERO, "s", "2");
        t.record(SimTime::ZERO, "s", "3");
        let msgs: Vec<&str> = t.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, ["2", "3"]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn disabled_buffer_stores_nothing() {
        let mut t = TraceBuffer::disabled();
        t.record(SimTime::ZERO, "s", "x");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
        assert!(!t.is_enabled());
    }

    #[test]
    fn render_is_line_per_record() {
        let mut t = TraceBuffer::with_capacity(4);
        t.record(SimTime::from_millis(1), "n1", "hello");
        let rendered = t.render();
        assert!(rendered.contains("n1"));
        assert!(rendered.contains("hello"));
        assert_eq!(rendered.lines().count(), 1);
    }

    #[test]
    fn clear_keeps_drop_count() {
        let mut t = TraceBuffer::with_capacity(1);
        t.record(SimTime::ZERO, "s", "1");
        t.record(SimTime::ZERO, "s", "2");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
