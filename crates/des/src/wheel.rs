//! A hierarchical timer wheel.
//!
//! The simulation heap ([`crate::EventQueue`]) charges O(log n) per
//! schedule/cancel and keeps one heap entry alive per armed timer. That is
//! fine for a handful of nodes, but a sharded process multiplexing
//! thousands of consensus groups arms (and mostly cancels) timers at a rate
//! proportional to *traffic*, and holds armed-but-never-firing election
//! timers proportional to *groups*. The wheel gives:
//!
//! - O(1) `schedule` / `cancel` / `deadline_of` keyed by an opaque timer
//!   key (re-scheduling a key replaces its previous deadline, matching the
//!   [`crate::TimerKind`]-replacement contract of the sans-IO stack);
//! - slot occupancy bitmaps (one `u64` per level), so advancing virtual
//!   time across an idle stretch skips empty regions in O(levels) instead
//!   of visiting every tick — an idle group whose timers were removed
//!   contributes *zero* work to every future advance;
//! - deterministic expiry order: timers fire sorted by `(deadline,
//!   schedule sequence)`, independent of wheel internals, so two runs with
//!   the same inputs produce identical schedules.
//!
//! The embedding arms **one** simulator event at [`TimerWheel::next_deadline`]
//! and calls [`TimerWheel::advance`] when it fires — the wheel replaces
//! per-timer heap events entirely.
//!
//! Internally: `LEVELS` wheels of 64 slots each, level `l` slots spanning
//! `64^l` ticks (1 tick = 1 µs), entries placed by distance from the
//! current tick and cascaded down as time approaches. Deadlines beyond the
//! top level's span are clamped and re-cascaded when reached, so arbitrary
//! far-future deadlines are legal.

use std::collections::HashMap;
use std::hash::Hash;

use crate::SimTime;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64
/// Number of levels. Level `LEVELS-1` slots span `64^(LEVELS-1)` µs;
/// with 7 levels the wheel addresses ~50 days before clamping.
const LEVELS: usize = 7;

#[derive(Clone, Debug)]
struct WheelEntry<K> {
    key: K,
    /// Exact expiry instant (never rounded; slots only bound it).
    deadline: SimTime,
    /// Monotone schedule sequence — the deterministic tiebreak.
    seq: u64,
    /// Generation at scheduling time; a reschedule/cancel bumps the live
    /// generation, turning older copies into tombstones skipped on drain.
    gen: u64,
}

#[derive(Clone, Debug)]
struct Level<K> {
    slots: Vec<Vec<WheelEntry<K>>>,
    /// Bit `s` set ⇔ `slots[s]` is non-empty (possibly only tombstones;
    /// drain reconciles).
    occupied: u64,
}

impl<K> Level<K> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }
}

/// A hierarchical timer wheel keyed by `K`.
///
/// Scheduling the same key again *replaces* the earlier deadline;
/// [`TimerWheel::cancel`] disarms a key. Both are O(1). See the module
/// docs for the full contract.
///
/// # Examples
///
/// ```
/// use des::{SimTime, TimerWheel};
///
/// let mut wheel: TimerWheel<&'static str> = TimerWheel::new();
/// wheel.schedule("election", SimTime::from_millis(150));
/// wheel.schedule("heartbeat", SimTime::from_millis(100));
/// wheel.cancel(&"election");
/// assert_eq!(wheel.next_deadline(), Some(SimTime::from_millis(100)));
///
/// let mut fired = Vec::new();
/// wheel.advance(SimTime::from_millis(200), &mut fired);
/// assert_eq!(fired, vec![(SimTime::from_millis(100), "heartbeat")]);
/// assert!(wheel.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct TimerWheel<K> {
    levels: Vec<Level<K>>,
    /// Tick (µs) the wheel has been advanced through.
    current: u64,
    /// Live keys: generation + exact deadline.
    keys: HashMap<K, (u64, SimTime)>,
    next_seq: u64,
    next_gen: u64,
    /// Memoized [`TimerWheel::next_deadline`]: `Some(answer)` when valid,
    /// `None` after a mutation that may have raised the minimum. Embeddings
    /// re-arm their one simulator event after *every* step, so the common
    /// case must not re-scan slots (a slot can hold thousands of co-due
    /// entries plus tombstones).
    next_cache: Option<Option<SimTime>>,
}

impl<K: Eq + Hash + Copy> Default for TimerWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Copy> TimerWheel<K> {
    /// Creates an empty wheel at time zero.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            current: 0,
            keys: HashMap::new(),
            next_seq: 0,
            next_gen: 0,
            next_cache: Some(None),
        }
    }

    /// Number of armed (live) timers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The instant the wheel has been advanced through.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.current)
    }

    /// Arms (or re-arms) `key` to expire at `deadline`. A deadline at or
    /// before the wheel's current time expires on the next [`advance`]
    /// call (clamped to fire immediately, never dropped).
    ///
    /// [`advance`]: TimerWheel::advance
    pub fn schedule(&mut self, key: K, deadline: SimTime) {
        let gen = self.next_gen;
        self.next_gen += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = self.keys.insert(key, (gen, deadline));
        match self.next_cache {
            // Replacing the entry that *was* the minimum may raise it.
            Some(Some(n)) if prev.is_some_and(|(_, d)| d == n) => {
                self.next_cache = None;
            }
            Some(known) if known.is_none_or(|n| deadline < n) => {
                self.next_cache = Some(Some(deadline));
            }
            _ => {}
        }
        let entry = WheelEntry {
            key,
            deadline,
            seq,
            gen,
        };
        self.place(entry);
    }

    /// Disarms `key`. Returns `true` if it was armed.
    ///
    /// O(1): the slot copy becomes a tombstone reconciled on drain.
    pub fn cancel(&mut self, key: &K) -> bool {
        match self.keys.remove(key) {
            Some((_, d)) => {
                // Removing the cached minimum invalidates it (another entry
                // may share the deadline, but proving that needs a scan).
                if self.next_cache == Some(Some(d)) {
                    self.next_cache = None;
                }
                true
            }
            None => false,
        }
    }

    /// The deadline `key` is armed for, if any.
    pub fn deadline_of(&self, key: &K) -> Option<SimTime> {
        self.keys.get(key).map(|&(_, d)| d)
    }

    /// The earliest armed deadline, exact. Memoized: O(1) until a
    /// mutation may have raised the minimum, then one recomputation that
    /// also sweeps the tombstones it scans (so each cancelled/rescheduled
    /// copy is visited at most once across all recomputations).
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        if let Some(known) = self.next_cache {
            return known;
        }
        let computed = self.compute_next_deadline();
        self.next_cache = Some(computed);
        computed
    }

    /// Minimum live deadline of level `l` slot `s`, pruning the slot's
    /// tombstones in place (a slot left empty clears its occupancy bit).
    fn slot_live_min(&mut self, l: usize, s: usize) -> Option<SimTime> {
        let keys = &self.keys;
        let slot = &mut self.levels[l].slots[s];
        slot.retain(|e| keys.get(&e.key).is_some_and(|&(gen, _)| gen == e.gen));
        if slot.is_empty() {
            self.levels[l].occupied &= !(1 << s);
        }
        self.levels[l].slots[s].iter().map(|e| e.deadline).min()
    }

    fn compute_next_deadline(&mut self) -> Option<SimTime> {
        if self.keys.is_empty() {
            return None;
        }
        let mut best: Option<SimTime> = None;
        let consider = |best: &mut Option<SimTime>, d: SimTime| {
            *best = Some(match *best {
                Some(b) if b <= d => b,
                _ => d,
            });
        };
        for l in 0..LEVELS {
            if l == LEVELS - 1 {
                // Top-level slots can hold entries from *later* windows
                // than their slot position suggests (one-behind parking,
                // beyond-span clamps), so no per-slot time order exists —
                // scan every live entry.
                let mut bits = self.levels[l].occupied;
                while bits != 0 {
                    let s = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if let Some(d) = self.slot_live_min(l, s) {
                        consider(&mut best, d);
                    }
                }
                continue;
            }
            // Below the top level every live entry's deadline lies inside
            // its slot's window, so the earliest occupied slot (by
            // `slot_time`) bounds the level minimum — but it may hold only
            // tombstones, so re-pick until one holds a live entry.
            loop {
                let mut bits = self.levels[l].occupied;
                let mut pick: Option<(u64, usize)> = None;
                while bits != 0 {
                    let s = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let st = self.slot_time(l, s);
                    if pick.is_none_or(|(t, _)| st < t) {
                        pick = Some((st, s));
                    }
                }
                let Some((_, s)) = pick else {
                    break;
                };
                if let Some(d) = self.slot_live_min(l, s) {
                    consider(&mut best, d);
                    break; // later slots of this level are strictly later
                }
                // Slot was all tombstones: its bit is now clear; re-pick.
            }
        }
        best
    }

    /// Advances the wheel to `to`, appending every expired timer to `out`
    /// as `(deadline, key)` in deterministic `(deadline, schedule-seq)`
    /// order. Empty stretches are skipped via the occupancy bitmaps.
    pub fn advance(&mut self, to: SimTime, out: &mut Vec<(SimTime, K)>) {
        let target = to.as_micros();
        // Drain into a scratch carrying seq: equal-deadline entries can sit
        // at different levels (scheduled at different distances), so drain
        // order alone is level order, not schedule order.
        let mut fired: Vec<(SimTime, u64, K)> = Vec::new();
        let mut stuck = 0u32;
        while self.current < target || self.due_at_current() {
            let Some(next) = self.next_occupied_tick() else {
                break;
            };
            if next > target {
                break;
            }
            let before = (self.current, fired.len());
            self.current = self.current.max(next);
            self.drain_tick(&mut fired);
            if (self.current, fired.len()) == before {
                stuck += 1;
                if stuck > 10_000 {
                    panic!(
                        "wheel stuck: current={} target={} next={} occupied={:?}",
                        self.current,
                        target,
                        next,
                        self.levels.iter().map(|l| l.occupied).collect::<Vec<_>>()
                    );
                }
            } else {
                stuck = 0;
            }
        }
        self.current = self.current.max(target);
        if !fired.is_empty() {
            // Firing removes live entries; the minimum moves. (A pure time
            // advance leaves the live set — and thus the cache — intact.)
            self.next_cache = None;
        }
        fired.sort_unstable_by_key(|&(d, s, _)| (d, s));
        out.extend(fired.into_iter().map(|(d, _, k)| (d, k)));
    }

    // ------------------------------------------------------------------

    fn is_live(&self, e: &WheelEntry<K>) -> bool {
        self.keys.get(&e.key).is_some_and(|&(gen, _)| gen == e.gen)
    }

    /// Places an entry at the highest level whose digit of the deadline
    /// differs from `current`'s digit (Varghese–Lauck placement).
    ///
    /// That slot is strictly *ahead* of `current`'s position within its
    /// window (all higher digits agree), so it is addressed before the
    /// ring wraps and the entry cascades down with less than one slot-unit
    /// remaining. Picking the level by delta *magnitude* instead is subtly
    /// wrong: a delta just under a level's span can carry into the next
    /// digit, mapping the entry into the slot `current` occupies — which
    /// drain would then re-place identically, forever.
    fn place(&mut self, entry: WheelEntry<K>) {
        let tick = entry.deadline.as_micros();
        // Already due: clamp *up* to `current` so the slot resolves to
        // the present position (drained by the very next advance).
        // `deadline` stays exact either way.
        let effective = tick.max(self.current);
        let diff = effective ^ self.current;
        let (level, slot) = if diff >> (SLOT_BITS * LEVELS as u32) != 0 {
            // The deadline lies past the current top-level window. Its own
            // top digit is still the right slot when it differs from
            // `current`'s — `slot_time` classifies a behind-position slot
            // as next-window, so it drains at the right wrap (and an
            // ahead-position slot drains early and re-places, making
            // window-sized progress). Only when the two top digits
            // *collide* (deadline ≥ a full window away in that case) park
            // one slot behind `current` — the last to come around — and
            // re-evaluate on drain.
            let shift = SLOT_BITS * (LEVELS as u32 - 1);
            let s = (effective >> shift) & (SLOTS as u64 - 1);
            let s_cur = (self.current >> shift) & (SLOTS as u64 - 1);
            if s != s_cur {
                (LEVELS - 1, s as usize)
            } else {
                (
                    LEVELS - 1,
                    ((s_cur + SLOTS as u64 - 1) & (SLOTS as u64 - 1)) as usize,
                )
            }
        } else {
            let level = if diff == 0 {
                0 // same tick as `current`: due immediately
            } else {
                ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
            };
            let slot =
                ((effective >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            (level, slot)
        };
        self.levels[level].occupied |= 1 << slot;
        self.levels[level].slots[slot].push(entry);
    }

    /// Absolute tick lower bound of level `l` slot `s`, relative to
    /// `current` (slots wrap within their level's window; a slot whose
    /// window-position lies behind `current` belongs to the next window).
    fn slot_time(&self, l: usize, s: usize) -> u64 {
        let unit = 1u64 << (SLOT_BITS * l as u32);
        let window = unit * SLOTS as u64;
        let base = (self.current / window) * window;
        let cand = base + unit * s as u64;
        if cand + unit <= self.current {
            cand + window
        } else {
            cand
        }
    }

    /// Earliest tick at which any slot (live or tombstoned) demands work.
    fn next_occupied_tick(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for (l, level) in self.levels.iter().enumerate() {
            let mut bits = level.occupied;
            while bits != 0 {
                let s = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let t = self.slot_time(l, s).max(self.current);
                best = Some(match best {
                    Some(b) if b <= t => b,
                    _ => t,
                });
            }
        }
        best
    }

    /// `true` when the slot addressed by `current` still holds entries
    /// (placed while already due).
    fn due_at_current(&self) -> bool {
        let s = (self.current & (SLOTS as u64 - 1)) as usize;
        self.levels[0].occupied & (1 << s) != 0
    }

    /// Drains every slot addressed by `current`: level-0 entries at or
    /// before `current` expire, later entries and higher-level slot
    /// contents cascade back in relative to the new `current`.
    fn drain_tick(&mut self, out: &mut Vec<(SimTime, u64, K)>) {
        for l in 0..LEVELS {
            let s = ((self.current >> (SLOT_BITS * l as u32)) & (SLOTS as u64 - 1)) as usize;
            if self.levels[l].occupied & (1 << s) == 0 {
                continue;
            }
            // Only drain a slot whose window has actually arrived.
            if self.slot_time(l, s) > self.current {
                continue;
            }
            let entries = std::mem::take(&mut self.levels[l].slots[s]);
            self.levels[l].occupied &= !(1 << s);
            for e in entries {
                if !self.is_live(&e) {
                    continue; // tombstone (cancelled or rescheduled)
                }
                if e.deadline.as_micros() <= self.current {
                    self.keys.remove(&e.key);
                    out.push((e.deadline, e.seq, e.key));
                } else {
                    self.place(e); // cascade down
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.schedule("b", t(2_000));
        w.schedule("a", t(1_000));
        w.schedule("c", t(90_000_000));
        let mut out = Vec::new();
        w.advance(t(100_000_000), &mut out);
        assert_eq!(
            out,
            vec![(t(1_000), "a"), (t(2_000), "b"), (t(90_000_000), "c")]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn reschedule_replaces_deadline() {
        let mut w = TimerWheel::new();
        w.schedule(1u32, t(500));
        w.schedule(1u32, t(5_000));
        assert_eq!(w.len(), 1);
        let mut out = Vec::new();
        w.advance(t(1_000), &mut out);
        assert!(out.is_empty(), "old deadline must not fire: {out:?}");
        w.advance(t(10_000), &mut out);
        assert_eq!(out, vec![(t(5_000), 1u32)]);
    }

    #[test]
    fn cancel_disarms() {
        let mut w = TimerWheel::new();
        w.schedule(7u64, t(100));
        assert!(w.cancel(&7));
        assert!(!w.cancel(&7));
        let mut out = Vec::new();
        w.advance(t(1_000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn next_deadline_is_exact_across_levels() {
        let mut w = TimerWheel::new();
        w.schedule("far", t(3_600_000_000)); // 1 h
        w.schedule("near", t(123_456));
        assert_eq!(w.next_deadline(), Some(t(123_456)));
        w.cancel(&"near");
        assert_eq!(w.next_deadline(), Some(t(3_600_000_000)));
    }

    #[test]
    fn due_now_fires_on_next_advance() {
        let mut w = TimerWheel::new();
        let mut out = Vec::new();
        w.advance(t(1_000), &mut out);
        w.schedule("late", t(500)); // already past
        assert_eq!(w.next_deadline(), Some(t(500)));
        w.advance(t(1_000), &mut out);
        assert_eq!(out, vec![(t(500), "late")]);
    }

    #[test]
    fn partial_advance_holds_future_entries() {
        let mut w = TimerWheel::new();
        w.schedule(1u8, t(10));
        w.schedule(2u8, t(20));
        let mut out = Vec::new();
        w.advance(t(15), &mut out);
        assert_eq!(out, vec![(t(10), 1u8)]);
        w.advance(t(25), &mut out);
        assert_eq!(out, vec![(t(10), 1u8), (t(20), 2u8)]);
    }

    #[test]
    fn far_future_beyond_span_is_clamped_not_lost() {
        let mut w = TimerWheel::new();
        // ~139 years in µs — beyond the 7-level span.
        let far = t(1u64 << 52);
        w.schedule("eon", far);
        let mut out = Vec::new();
        w.advance(t(1u64 << 40), &mut out);
        assert!(out.is_empty());
        w.advance(far, &mut out);
        assert_eq!(out, vec![(far, "eon")]);
    }

    #[test]
    fn equal_deadlines_fire_in_schedule_order() {
        let mut w = TimerWheel::new();
        for k in 0..10u32 {
            w.schedule(k, t(777));
        }
        let mut out = Vec::new();
        w.advance(t(1_000), &mut out);
        let keys: Vec<u32> = out.into_iter().map(|(_, k)| k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    /// Randomized model check against a sorted-vec reference: schedules,
    /// reschedules, cancels, and partial advances all agree.
    #[test]
    fn model_check_against_reference() {
        for seed in 0..8u64 {
            let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5);
            let mut wheel: TimerWheel<u64> = TimerWheel::new();
            // Reference: key -> (deadline, seq of last schedule).
            let mut model: HashMap<u64, (u64, u64)> = HashMap::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..2_000 {
                match rng.gen_range(0..10u32) {
                    0..=4 => {
                        let key = rng.gen_range(0..64u64);
                        let delta = match rng.gen_range(0..5u32) {
                            0 => rng.gen_range(0..100u64),
                            1 => rng.gen_range(0..10_000u64),
                            2 => rng.gen_range(0..5_000_000u64),
                            3 => rng.gen_range(0..2_000_000_000u64),
                            // Straddle the top-level window span (2^42 µs):
                            // the next-top-window placement cases.
                            _ => rng.gen_range(0..(1u64 << 43)),
                        };
                        wheel.schedule(key, t(now + delta));
                        model.insert(key, (now + delta, seq));
                        seq += 1;
                    }
                    5 => {
                        let key = rng.gen_range(0..64u64);
                        assert_eq!(wheel.cancel(&key), model.remove(&key).is_some());
                    }
                    6..=8 => {
                        // Mostly small steps; occasionally leap across
                        // top-level windows so far-parked entries drain.
                        let step = if rng.gen_range(0..10u32) == 0 {
                            rng.gen_range(0..(1u64 << 42))
                        } else {
                            rng.gen_range(0..3_000_000u64)
                        };
                        now += step;
                        let mut fired = Vec::new();
                        wheel.advance(t(now), &mut fired);
                        let mut expect: Vec<(u64, u64, u64)> = model
                            .iter()
                            .filter(|(_, &(d, _))| d <= now)
                            .map(|(&k, &(d, s))| (d, s, k))
                            .collect();
                        expect.sort_unstable();
                        for (_, _, k) in &expect {
                            model.remove(k);
                        }
                        let got: Vec<(u64, u64)> =
                            fired.into_iter().map(|(d, k)| (d.as_micros(), k)).collect();
                        let want: Vec<(u64, u64)> =
                            expect.into_iter().map(|(d, _, k)| (d, k)).collect();
                        assert_eq!(got, want, "seed {seed} at now={now}");
                    }
                    _ => {
                        // next_deadline must equal the model's minimum.
                        let want = model.values().map(|&(d, _)| d).min();
                        assert_eq!(
                            wheel.next_deadline().map(|d| d.as_micros()),
                            want,
                            "seed {seed} at now={now}"
                        );
                    }
                }
                assert_eq!(wheel.len(), model.len());
            }
        }
    }

}
