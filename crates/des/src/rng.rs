//! Deterministic, splittable randomness.
//!
//! All randomness in a simulation flows from a single `u64` seed. Components
//! obtain *independent* streams by [`SimRng::split`]ting with a label, so that
//! adding a new consumer of randomness in one module does not perturb the
//! stream seen by any other module — a property that keeps regression traces
//! stable as the codebase evolves.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::SimDuration;

/// A deterministic random number generator for simulations.
///
/// Wraps [`rand::rngs::StdRng`] seeded from a `u64`, and adds labelled
/// splitting plus helpers commonly needed in discrete-event simulation
/// (jittered durations, Bernoulli trials).
///
/// # Examples
///
/// ```
/// use des::SimRng;
///
/// let mut root = SimRng::seed_from_u64(42);
/// let mut net = root.split("network");
/// let mut timers = root.split("timers");
/// // Streams are independent: draws from one do not affect the other.
/// let a: u64 = net.gen_range(0..100);
/// let b: u64 = timers.gen_range(0..100);
/// assert!(a < 100 && b < 100);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Seed material this generator was created from, for diagnostics.
    lineage: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            lineage: seed,
        }
    }

    /// Derives an independent generator for the given component label.
    ///
    /// The child stream is a pure function of `(parent seed material, label)`,
    /// so the same `(seed, label)` pair always yields the same stream
    /// regardless of how much the parent has been used in between.
    pub fn split(&self, label: &str) -> SimRng {
        let child = splitmix64(self.lineage ^ fnv1a(label.as_bytes()));
        SimRng {
            inner: StdRng::seed_from_u64(child),
            lineage: child,
        }
    }

    /// Derives an independent generator for a numbered component
    /// (e.g. per-node streams).
    pub fn split_indexed(&self, label: &str, index: u64) -> SimRng {
        let child = splitmix64(self.lineage ^ fnv1a(label.as_bytes()) ^ splitmix64(index));
        SimRng {
            inner: StdRng::seed_from_u64(child),
            lineage: child,
        }
    }

    /// The seed material this generator derives from.
    pub fn lineage(&self) -> u64 {
        self.lineage
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen::<f64>() < p
    }

    /// Samples a duration uniformly from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "empty duration range {lo}..{hi}");
        if lo == hi {
            return lo;
        }
        SimDuration::from_micros(self.inner.gen_range(lo.as_micros()..=hi.as_micros()))
    }

    /// Samples a duration as `base * U(1-jitter, 1+jitter)`.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not within `0.0..=1.0`.
    pub fn jittered(&mut self, base: SimDuration, jitter: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&jitter), "jitter out of range: {jitter}");
        if jitter == 0.0 {
            return base;
        }
        let factor = self.inner.gen_range(1.0 - jitter..=1.0 + jitter);
        base.mul_f64(factor)
    }

    /// Samples an exponentially distributed duration with the given mean,
    /// clamped to at least one microsecond.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let sample = -u.ln() * mean.as_micros() as f64;
        SimDuration::from_micros((sample.round() as u64).max(1))
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash, used to fold string labels into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// SplitMix64 finalizer, used to decorrelate derived seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn split_is_stable_regardless_of_parent_usage() {
        let root = SimRng::seed_from_u64(99);
        let mut used = root.clone();
        for _ in 0..10 {
            used.next_u64();
        }
        // Splitting after use yields the same child stream as splitting before.
        let mut child_fresh = root.split("net");
        let mut child_used = used.split("net");
        for _ in 0..20 {
            assert_eq!(child_fresh.next_u64(), child_used.next_u64());
        }
    }

    #[test]
    fn split_labels_are_independent() {
        let root = SimRng::seed_from_u64(5);
        let mut a = root.split("a");
        let mut b = root.split("b");
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn split_indexed_distinguishes_indices() {
        let root = SimRng::seed_from_u64(5);
        let mut n0 = root.split_indexed("node", 0);
        let mut n1 = root.split_indexed("node", 1);
        assert_ne!(n0.next_u64(), n1.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn chance_rate_is_plausible() {
        let mut rng = SimRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn duration_between_bounds() {
        let mut rng = SimRng::seed_from_u64(13);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1_000 {
            let d = rng.duration_between(lo, hi);
            assert!(d >= lo && d <= hi);
        }
        assert_eq!(rng.duration_between(lo, lo), lo);
    }

    #[test]
    fn jittered_bounds() {
        let mut rng = SimRng::seed_from_u64(17);
        let base = SimDuration::from_millis(100);
        for _ in 0..1_000 {
            let d = rng.jittered(base, 0.2);
            assert!(d >= SimDuration::from_millis(80) && d <= SimDuration::from_millis(120));
        }
        assert_eq!(rng.jittered(base, 0.0), base);
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from_u64(19);
        let mean = SimDuration::from_millis(50);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).as_micros()).sum();
        let avg = total / n;
        assert!(
            (40_000..60_000).contains(&avg),
            "observed mean {avg}us, expected ~50_000us"
        );
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed_from_u64(23);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let v = [1, 2, 3];
        assert!(v.contains(rng.choose(&v).unwrap()));
        let mut s: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut s);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(s, sorted, "shuffle of 100 elements should not be identity");
    }
}
