//! Property-based tests for the simulation kernel's core invariants.

use des::{EventQueue, SimDuration, SimRng, SimTime, Simulation};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing (time, seq) order, no matter the
    /// scheduling pattern.
    #[test]
    fn queue_pops_in_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(f) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(f.time > lt || (f.time == lt && f.event > li),
                    "order violated: {:?} after {:?}", (f.time, f.event), (lt, li));
            }
            last = Some((f.time, f.event));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exact_subset(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some(f) = q.pop() {
            popped.push(f.event);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// The simulation clock never moves backwards.
    #[test]
    fn clock_is_monotone(delays in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut sim = Simulation::new(5);
        for &d in &delays {
            sim.schedule_after(SimDuration::from_micros(d), ());
        }
        let mut last = sim.now();
        while let Some(f) = sim.next_event() {
            prop_assert!(f.time >= last);
            last = f.time;
        }
    }

    /// Split RNG streams are reproducible: (seed, label) fully determines
    /// the stream.
    #[test]
    fn rng_split_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::RngCore;
        let mut a = SimRng::seed_from_u64(seed).split(&label);
        let mut b = SimRng::seed_from_u64(seed).split(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// duration_between always respects its bounds.
    #[test]
    fn duration_between_in_bounds(seed in any::<u64>(), lo in 0u64..10_000, width in 0u64..10_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        let lo_d = SimDuration::from_micros(lo);
        let hi_d = SimDuration::from_micros(lo + width);
        let d = rng.duration_between(lo_d, hi_d);
        prop_assert!(d >= lo_d && d <= hi_d);
    }

    /// Time arithmetic: (t + d) - d == t for all representable values.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
    }
}
