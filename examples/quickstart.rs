//! Quickstart: run a five-site Fast Raft group on the deterministic
//! simulator and watch proposals commit on the fast track.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hierarchical_consensus::bench::{run_fast_raft, Scenario};

fn main() {
    // The paper's base setting (Fig. 3): five sites in one region,
    // sub-millisecond RTT, one closed-loop proposer, no message loss.
    let mut scenario = Scenario::fig3_base(/* seed */ 7, /* loss */ 0.0);
    scenario.target_commits = Some(25);

    let (report, metrics) = run_fast_raft(&scenario);

    println!("fast raft, 5 sites, 0% loss, 25 closed-loop proposals");
    println!("------------------------------------------------------");
    println!("commits completed : {}", report.completed);
    println!(
        "commit latency    : mean {:.1} ms, p95 {:.1} ms",
        report.latency.mean_ms, report.latency.p95_ms
    );
    println!(
        "fast-track ratio  : {:.0}% of leader commits",
        report.fast_track_ratio * 100.0
    );
    println!(
        "network           : {} messages offered, {} delivered",
        report.net.offered, report.net.delivered
    );
    println!("safety            : {}", if report.safety_ok { "OK" } else { "VIOLATED" });

    println!("\nfirst proposals:");
    for sample in metrics.samples.iter().take(5) {
        println!(
            "  by {} at t={:.3}s -> committed {:.1} ms later",
            sample.proposer,
            sample.proposed_at.as_secs_f64(),
            sample.latency().as_millis_f64()
        );
    }
}
