//! Quickstart: run a five-site Fast Raft group on the deterministic
//! simulator through the **typed client API** — session clients issue
//! exactly-once writes and linearizable reads, watch the fast track commit,
//! and finish with a "read your writes back" handshake.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hierarchical_consensus::bench::{run_fast_raft, ReadMix, Scenario};
use hierarchical_consensus::types::Consistency;

fn main() {
    // The paper's base setting (Fig. 3): five sites in one region,
    // sub-millisecond RTT, one closed-loop session client, no loss. On top
    // of the paper's all-write evaluation: one in four operations is a
    // linearizable read, and the run ends with a final linearizable read
    // that must reflect every completed write (checked online).
    let mut scenario = Scenario::fig3_base(/* seed */ 7, /* loss */ 0.0);
    scenario.target_commits = Some(25);
    scenario.reads = Some(ReadMix {
        ratio: 0.25,
        consistency: Consistency::Linearizable,
        final_read: true,
    });

    let (report, metrics) = run_fast_raft(&scenario);

    println!("fast raft, 5 sites, 0% loss, 25 session ops (25% linearizable reads)");
    println!("---------------------------------------------------------------------");
    println!("client ops completed : {}", report.completed);
    println!(
        "write latency        : mean {:.1} ms, p95 {:.1} ms",
        report.latency.mean_ms, report.latency.p95_ms
    );
    println!(
        "read latency         : mean {:.1} ms, p95 {:.1} ms (ReadIndex round)",
        report.read_latency.mean_ms, report.read_latency.p95_ms
    );
    println!(
        "fast-track ratio     : {:.0}% of leader commits",
        report.fast_track_ratio * 100.0
    );
    println!(
        "linearizability      : {} reads verified against completed writes",
        report.lin_reads_checked
    );
    println!(
        "exactly-once         : {} duplicate suppressions, {} client retries",
        report.duplicates_suppressed, report.client_retries
    );
    println!(
        "network              : {} messages offered, {} delivered",
        report.net.offered, report.net.delivered
    );
    println!("safety               : {}", if report.safety_ok { "OK" } else { "VIOLATED" });

    println!("\nfirst operations:");
    for sample in metrics.samples.iter().take(3) {
        println!(
            "  write by {} at t={:.3}s -> committed {:.1} ms later",
            sample.proposer,
            sample.proposed_at.as_secs_f64(),
            sample.latency().as_millis_f64()
        );
    }
    for sample in metrics.read_samples.iter().take(2) {
        println!(
            "  read  by {} at t={:.3}s -> answered  {:.1} ms later",
            sample.proposer,
            sample.proposed_at.as_secs_f64(),
            sample.latency().as_millis_f64()
        );
    }
}
