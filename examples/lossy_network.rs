//! Fast track vs classic track under message loss — Fig. 3's mechanism,
//! observable per run.
//!
//! Sweeps forced message loss and shows the fast track eroding: each lost
//! broadcast or vote pushes a commit onto the classic track, costing an
//! extra leader-paced round.
//!
//! ```text
//! cargo run --example lossy_network
//! ```

use hierarchical_consensus::bench::{run_classic_raft, run_fast_raft, Scenario};

fn main() {
    println!("fast track erosion under loss (5 sites, closed-loop proposer)");
    println!("loss%  classic(ms)  fast(ms)  fast-track%   winner");
    println!("--------------------------------------------------------------");
    for loss_pct in [0u32, 2, 5, 8, 10, 15] {
        let mut scenario = Scenario::fig3_base(31, f64::from(loss_pct) / 100.0);
        scenario.target_commits = Some(40);
        let (classic, _) = run_classic_raft(&scenario);
        let (fast, _) = run_fast_raft(&scenario);
        let winner = if fast.latency.mean_ms <= classic.latency.mean_ms {
            "fast raft"
        } else {
            "classic raft"
        };
        println!(
            "{:5}  {:11.1}  {:8.1}  {:10.0}%   {}",
            loss_pct,
            classic.latency.mean_ms,
            fast.latency.mean_ms,
            fast.fast_track_ratio * 100.0,
            winner
        );
    }
    println!();
    println!(
        "the paper's guidance (§VI-A): \"Fast Raft is best used when message \
         loss is not common.\""
    );
}
