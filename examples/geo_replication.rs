//! Geo-replication with C-Raft — the paper's headline use case (§V), driven
//! through the typed client API.
//!
//! Three clusters of three sites each, spread across regions with AWS-like
//! inter-region latency. Session clients write with exactly-once semantics
//! and are acknowledged at **local** commit (sub-100 ms); one in five
//! operations is a **linearizable read**, which in C-Raft is a *global*
//! read — answered at the global commit floor from the cluster leader's
//! **recursive lease** when it is live (zero wide-area messages; see
//! docs/CONSISTENCY.md), falling back to a ReadIndex round through the
//! global engine otherwise — and every run ends with a final linearizable
//! read per client ("read your writes back"). Batches of ten flow into the
//! totally ordered global log in the background.
//!
//! ```text
//! cargo run --example geo_replication
//! ```

use hierarchical_consensus::bench::{
    run_craft, CRaftScenario, NetworkKind, ReadMix, Scenario,
};
use hierarchical_consensus::protocols::{ProposalMode, Timing};
use hierarchical_consensus::sim::SimDuration;
use hierarchical_consensus::types::{Consistency, NodeId};

fn main() {
    let scenario = Scenario {
        seed: 11,
        sites: 9,
        network: NetworkKind::Regions { regions: 3 },
        loss: 0.0,
        timing: Timing::lan(),
        // One closed-loop session client per cluster.
        proposers: vec![NodeId(1), NodeId(4), NodeId(7)],
        payload_bytes: 64,
        target_commits: Some(400),
        duration: SimDuration::from_secs(120),
        warmup: SimDuration::from_secs(10),
        faults: Vec::new(),
        leader_bias: None,
        reads: Some(ReadMix {
            ratio: 0.2,
            consistency: Consistency::Linearizable,
            final_read: true,
        }),
        unbatched_persists: false,
    };
    let craft = CRaftScenario {
        clusters: 3,
        batch_size: 10,
        max_batch_bytes: Timing::wan().max_bytes_per_append,
        global_snapshot_threshold: Timing::wan().snapshot_threshold,
        global_timing: Timing::wan(),
        global_proposal_mode: ProposalMode::LeaderForward,
    };

    let (report, metrics) = run_craft(&scenario, &craft);

    println!("c-raft: 3 clusters x 3 sites across regions, sessions + 20% global reads");
    println!("-------------------------------------------------------------------------");
    println!(
        "write latency (local ack) : mean {:.1} ms - the hierarchy's fast path",
        report.latency.mean_ms
    );
    println!(
        "read latency (global)     : mean {:.1} ms, p95 {:.1} ms",
        report.read_latency.mean_ms, report.read_latency.p95_ms
    );
    println!(
        "read path split           : {} lease-served (zero messages), {} paid the",
        report.lease_reads, report.readindex_reads
    );
    println!("                            cross-region ReadIndex round (docs/CONSISTENCY.md)");
    println!(
        "global log throughput     : {:.1} entries/s ({} total)",
        report.throughput_per_s, report.global_items
    );
    println!(
        "session ops completed     : {} ({} writes, {} reads)",
        report.completed,
        metrics.samples.len(),
        metrics.read_samples.len()
    );
    println!(
        "linearizability           : {} global reads verified (floor never below",
        report.lin_reads_checked
    );
    println!("                            a previously completed global operation)");
    println!(
        "exactly-once              : {} duplicate suppressions, {} client retries",
        report.duplicates_suppressed, report.client_retries
    );
    println!(
        "wide-area traffic         : {} KiB inter-region, {} KiB intra-region",
        report.net.inter_region_bytes / 1024,
        report.net.intra_region_bytes / 1024
    );
    println!(
        "safety                    : {}",
        if report.safety_ok { "OK" } else { "VIOLATED" }
    );
    println!();
    println!(
        "note: clients see ~{:.0}ms local write acks; global linearizable reads \
         cost ~{:.0}ms - routing to the leaseholder, with the wide-area \
         confirmation round amortized away by the recursive lease - the \
         consistency spectrum the hierarchy buys.",
        report.latency.mean_ms, report.read_latency.mean_ms
    );
}
