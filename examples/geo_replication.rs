//! Geo-replication with C-Raft — the paper's headline use case (§V).
//!
//! Three clusters of three sites each, spread across regions with AWS-like
//! inter-region latency. Clients are acknowledged at **local** commit
//! (sub-100 ms), while batches of ten flow into the totally ordered global
//! log in the background.
//!
//! ```text
//! cargo run --example geo_replication
//! ```

use hierarchical_consensus::bench::{
    run_craft, CRaftScenario, NetworkKind, Scenario,
};
use hierarchical_consensus::protocols::{ProposalMode, Timing};
use hierarchical_consensus::sim::SimDuration;
use hierarchical_consensus::types::NodeId;

fn main() {
    let scenario = Scenario {
        seed: 11,
        sites: 9,
        network: NetworkKind::Regions { regions: 3 },
        loss: 0.0,
        timing: Timing::lan(),
        // One closed-loop client per cluster.
        proposers: vec![NodeId(1), NodeId(4), NodeId(7)],
        payload_bytes: 64,
        target_commits: None,
        duration: SimDuration::from_secs(70),
        warmup: SimDuration::from_secs(10),
        faults: Vec::new(),
        leader_bias: None,
    };
    let craft = CRaftScenario {
        clusters: 3,
        batch_size: 10,
        max_batch_bytes: Timing::wan().max_bytes_per_append,
        global_snapshot_threshold: Timing::wan().snapshot_threshold,
        global_timing: Timing::wan(),
        global_proposal_mode: ProposalMode::LeaderForward,
    };

    let (report, metrics) = run_craft(&scenario, &craft);

    println!("c-raft: 3 clusters x 3 sites across regions, 60s measured");
    println!("-----------------------------------------------------------");
    println!(
        "client-visible latency  : mean {:.1} ms (local commit ack)",
        report.latency.mean_ms
    );
    println!(
        "global log throughput   : {:.1} entries/s ({} total)",
        report.throughput_per_s, report.global_items
    );
    println!(
        "locally acked proposals : {}",
        metrics.samples.len()
    );
    println!(
        "wide-area traffic       : {} KiB inter-region, {} KiB intra-region",
        report.net.inter_region_bytes / 1024,
        report.net.intra_region_bytes / 1024
    );
    println!("safety                  : {}", if report.safety_ok { "OK" } else { "VIOLATED" });
    println!();
    println!(
        "note: clients see ~50-100ms local acks while the global log absorbs \
         {:.0} entries/s across {}ms-RTT links — the hierarchy at work.",
        report.throughput_per_s, 150
    );
}
