//! Dynamic membership under churn — the scenario that motivates Fast Raft
//! (§I: "membership changes may be sudden, and may occur silently").
//!
//! A five-site Fast Raft group runs a steady workload while:
//!   - at t = 8 s two sites leave **silently** (no leave request);
//!   - the leader detects them via the member timeout (five missed
//!     heartbeat responses) and reconfigures them out, one at a time;
//!   - a sixth site then joins through the self-announced join protocol and
//!     is caught up as a non-voting learner before entering the
//!     configuration.
//!
//! ```text
//! cargo run --example churn
//! ```

use hierarchical_consensus::bench::{
    FaultAction, Runner, RunnerConfig, SafetyChecker, Workload,
};
use hierarchical_consensus::protocols::{FastRaftNode, Timing};
use hierarchical_consensus::sim::{Network, SimDuration, SimRng, SimTime};
use hierarchical_consensus::types::{Configuration, LogScope, NodeId};

fn main() {
    let members: Configuration = (0..5).map(NodeId).collect();
    let root = SimRng::seed_from_u64(4242);

    // Five founding members plus one node that will join at runtime: it
    // starts in "joining" mode, knowing only its contact sites.
    let mut nodes: Vec<FastRaftNode> = (0..5)
        .map(|i| {
            FastRaftNode::new(
                NodeId(i),
                members.clone(),
                Timing::lan(),
                root.split_indexed("node", i),
            )
        })
        .collect();
    nodes.push(FastRaftNode::joining(
        NodeId(9),
        vec![NodeId(0), NodeId(1), NodeId(2)],
        Timing::lan(),
        root.split_indexed("node", 9),
    ));

    let workload = Workload::writes_only(vec![NodeId(1)], 64, None, SimTime::from_secs(3));
    let faults = vec![
        (SimTime::from_secs(8), FaultAction::SilentLeave(NodeId(3))),
        (SimTime::from_secs(8), FaultAction::SilentLeave(NodeId(4))),
    ];
    let mut runner = Runner::new(
        nodes,
        Network::reliable_lan((0..5).map(NodeId).chain([NodeId(9)])),
        workload,
        faults,
        RunnerConfig {
            seed: 4242,
            ack_scope: LogScope::Global,
            measure_from: SimTime::from_secs(3),
            clock_skew: Timing::lan().max_clock_skew,
            disk_fsync_latency: des::SimDuration::ZERO,
            unbatched_persists: false,
            persist_stalls: None,
        },
        SafetyChecker::new(),
    );

    runner.run_until(SimTime::ZERO + SimDuration::from_secs(25));

    let metrics = runner.metrics();
    println!("churn run: 5 sites; 2 leave silently at t=8s; node 9 joins");
    println!("-----------------------------------------------------------");
    println!("proposals committed : {}", metrics.samples.len());
    println!("members suspected   : {}", metrics.member_suspected);
    println!("config commits      : {}", metrics.config_commits);
    println!(
        "latency mean        : {:.1} ms",
        metrics.latency_stats().mean_ms
    );

    // The surviving configuration: 0, 1, 2 and the joiner 9.
    let survivor = runner.node(NodeId(0)).expect("node 0 alive");
    let cfg: Vec<String> = survivor.config().iter().map(|n| n.to_string()).collect();
    println!("final configuration : {{{}}}", cfg.join(", "));
    println!(
        "joiner state        : {}",
        if runner.node(NodeId(9)).is_some_and(|n| !n.is_joining()) {
            "full member"
        } else {
            "still joining"
        }
    );
    runner.safety().assert_ok();
    println!("safety              : OK");
}
