//! The paper's headline claims, asserted at reduced scale on every test run
//! (full-scale numbers live in EXPERIMENTS.md and the `bench` binaries).

use hierarchical_consensus::bench::experiments;

/// Figs. 1–2: classic Raft needs four one-way message delays from proposal
/// to proposer notification; Fast Raft needs three ("from three message
/// rounds to two" before the commit point).
#[test]
fn message_rounds_match_figures_1_and_2() {
    let r = experiments::rounds::run(42, 10);
    assert!(
        (3.8..=4.3).contains(&r.raft_hops),
        "classic raft hops {} (expected ~4)",
        r.raft_hops
    );
    assert!(
        (2.8..=3.3).contains(&r.fast_hops),
        "fast raft hops {} (expected ~3)",
        r.fast_hops
    );
}

/// §VI-A: "Fast Raft achieved about half the latency as classic Raft" at
/// low loss.
#[test]
fn fast_raft_half_latency_at_low_loss() {
    let r = experiments::fig3::run(&[1, 2], &[0.0], 30);
    let speedup = r.speedup_at_zero_loss;
    assert!(
        (1.6..=2.6).contains(&speedup),
        "speedup {speedup} not in the paper's ~2x band"
    );
    // And the fast track carries essentially all commits.
    assert!(r.rows[0].fast_track_ratio > 0.95);
}

/// §VI-A: "as message loss increased, Fast Raft started to degrade in
/// performance while classic Raft maintained similar latency".
#[test]
fn fast_raft_degrades_with_loss_classic_stays_flat() {
    let r = experiments::fig3::run(&[3], &[0.0, 8.0], 30);
    let clean = &r.rows[0];
    let lossy = &r.rows[1];
    assert!(
        lossy.fast_ms > clean.fast_ms * 1.1,
        "fast raft should degrade: {} -> {}",
        clean.fast_ms,
        lossy.fast_ms
    );
    assert!(
        lossy.fast_track_ratio < clean.fast_track_ratio,
        "loss must erode the fast track"
    );
    // Classic stays within a loose band (no fast-track cliff).
    assert!(
        lossy.raft_ms < clean.raft_ms * 1.8,
        "classic raft fell off a cliff: {} -> {}",
        clean.raft_ms,
        lossy.raft_ms
    );
}

/// Fig. 4: the silent leave of 2/5 sites causes a spike (the paper reports
/// >200 ms) and then latency returns to a 50–100 ms band.
#[test]
fn silent_leave_spike_and_recovery() {
    let r = experiments::fig4::run(4242, 6, 14);
    assert!(r.safety_ok);
    assert!(r.members_suspected >= 2, "both leavers must be suspected");
    assert!(
        r.peak_after_ms > 150.0,
        "expected a disruption spike, peak {}",
        r.peak_after_ms
    );
    assert!(
        (30.0..=120.0).contains(&r.recovered_ms),
        "recovered latency {} outside the paper's 50-100ms band (loose)",
        r.recovered_ms
    );
}

/// §VI-C: C-Raft beats classic Raft's global throughput by a widening
/// factor as clusters multiply (the paper reports 5x at 10 clusters; the
/// reduced-scale bound here is >2x at 4 clusters).
#[test]
fn craft_outscales_classic_raft() {
    let r = experiments::fig5::run(&[1], &[4], 20, 20);
    let row = &r.rows[0];
    assert!(
        row.speedup > 2.0,
        "c-raft speedup {} at 4 clusters (expected > 2x)",
        row.speedup
    );
}

/// Ext-A mechanism check: the paper-literal broadcast fast track loses to
/// leader forwarding at the global level once many clusters propose
/// concurrently.
#[test]
fn global_broadcast_collapses_under_contention() {
    let r = experiments::ext::mode_ablation(7, &[10], 20);
    let row = &r.rows[0];
    assert!(
        row.forward_tput > row.broadcast_tput * 1.5,
        "leader-forward {} vs broadcast {}",
        row.forward_tput,
        row.broadcast_tput
    );
}
