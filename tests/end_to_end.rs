//! Workspace-level integration tests: full protocol stacks over the
//! simulated network, including randomized fault schedules that hammer the
//! safety property (Definition 2.1).

use hierarchical_consensus::bench::{
    run_classic_raft, run_craft, run_fast_raft, CRaftScenario, FaultAction, NetworkKind, Scenario,
};
use hierarchical_consensus::protocols::{ProposalMode, Timing};
use hierarchical_consensus::sim::{SimDuration, SimRng, SimTime};
use hierarchical_consensus::types::NodeId;

fn base(seed: u64, loss: f64) -> Scenario {
    let mut s = Scenario::fig3_base(seed, loss);
    s.target_commits = None;
    s.duration = SimDuration::from_secs(30);
    s
}

/// Random crash/recover/partition schedule for a 5-site cluster.
fn random_faults(seed: u64) -> Vec<(SimTime, FaultAction)> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xFA17);
    let mut faults = Vec::new();
    let mut t = 5_000u64; // ms
    for _ in 0..4 {
        t += rng.gen_range(1_000..4_000u64);
        let at = SimTime::from_millis(t);
        match rng.gen_range(0..3u8) {
            0 => {
                let victim = NodeId(rng.gen_range(0..5u64));
                faults.push((at, FaultAction::Crash(victim)));
                let back = at + SimDuration::from_millis(rng.gen_range(1_500..4_000u64));
                faults.push((back, FaultAction::Recover(victim)));
            }
            1 => {
                let cut = rng.gen_range(1..3u64);
                let side_a: Vec<NodeId> = (0..cut).map(NodeId).collect();
                let side_b: Vec<NodeId> = (cut..5).map(NodeId).collect();
                faults.push((at, FaultAction::Partition { side_a, side_b }));
                let heal = at + SimDuration::from_millis(rng.gen_range(1_000..3_000u64));
                faults.push((heal, FaultAction::Heal));
            }
            _ => {
                let victim = NodeId(rng.gen_range(3..5u64));
                faults.push((at, FaultAction::SilentLeave(victim)));
            }
        }
    }
    faults.sort_by_key(|(at, _)| *at);
    faults
}

#[test]
fn fast_raft_safety_under_random_fault_schedules() {
    for seed in [101, 202, 303, 404, 505] {
        let mut s = base(seed, 0.03);
        s.faults = random_faults(seed);
        let (report, _) = run_fast_raft(&s);
        assert!(report.safety_ok, "seed {seed}: safety violated");
        assert!(
            report.commits_checked > 0,
            "seed {seed}: nothing committed at all"
        );
    }
}

#[test]
fn classic_raft_safety_under_random_fault_schedules() {
    for seed in [111, 222, 333] {
        let mut s = base(seed, 0.03);
        s.faults = random_faults(seed);
        let (report, _) = run_classic_raft(&s);
        assert!(report.safety_ok, "seed {seed}: safety violated");
    }
}

#[test]
fn fast_raft_liveness_resumes_after_partition_heals() {
    let mut s = base(7, 0.0);
    // Majority partition isolates the minority for 4 seconds.
    s.faults = vec![
        (
            SimTime::from_secs(8),
            FaultAction::Partition {
                side_a: vec![NodeId(0), NodeId(1), NodeId(2)],
                side_b: vec![NodeId(3), NodeId(4)],
            },
        ),
        (SimTime::from_secs(12), FaultAction::Heal),
    ];
    let (report, metrics) = run_fast_raft(&s);
    assert!(report.safety_ok);
    // Proposals committed both during (majority side works) and after.
    let after_heal = metrics
        .samples
        .iter()
        .filter(|p| p.committed_at > SimTime::from_secs(13))
        .count();
    assert!(after_heal > 10, "liveness did not resume: {after_heal}");
}

#[test]
fn craft_safety_with_cluster_leader_crash() {
    let s = Scenario {
        seed: 909,
        sites: 9,
        network: NetworkKind::Regions { regions: 3 },
        loss: 0.0,
        timing: Timing::lan(),
        proposers: vec![NodeId(1), NodeId(4), NodeId(7)],
        payload_bytes: 32,
        target_commits: None,
        duration: SimDuration::from_secs(60),
        warmup: SimDuration::from_secs(10),
        // Crash cluster 1's designated leader mid-run; its cluster elects a
        // successor which must rejoin the global level.
        faults: vec![(SimTime::from_secs(25), FaultAction::Crash(NodeId(3)))],
        leader_bias: None,
        reads: None,
        unbatched_persists: false,
    };
    let craft = CRaftScenario {
        clusters: 3,
        batch_size: 5,
        max_batch_bytes: Timing::wan().max_bytes_per_append,
        global_snapshot_threshold: Timing::wan().snapshot_threshold,
        global_timing: Timing::wan(),
        global_proposal_mode: ProposalMode::LeaderForward,
    };
    let (report, _) = run_craft(&s, &craft);
    assert!(report.safety_ok, "hierarchical safety violated");
    assert!(report.global_items > 0, "no global progress at all");
}

#[test]
fn determinism_across_protocols() {
    for loss in [0.0, 0.05] {
        let mut s = base(55, loss);
        s.target_commits = Some(20);
        let (a, _) = run_classic_raft(&s);
        let (b, _) = run_classic_raft(&s);
        assert_eq!(a.latency.mean_ms, b.latency.mean_ms);
        assert_eq!(a.net.offered, b.net.offered);
        let (c, _) = run_fast_raft(&s);
        let (d, _) = run_fast_raft(&s);
        assert_eq!(c.latency.mean_ms, d.latency.mean_ms);
        assert_eq!(c.net.offered, d.net.offered);
    }
}

#[test]
fn write_ahead_recovery_preserves_commits() {
    // Crash a follower then the leader, recover both, and verify the
    // committed prefix is identical before and after.
    let mut s = base(66, 0.0);
    s.faults = vec![
        (SimTime::from_secs(6), FaultAction::Crash(NodeId(2))),
        (SimTime::from_secs(9), FaultAction::Recover(NodeId(2))),
        (SimTime::from_secs(12), FaultAction::Crash(NodeId(0))),
        (SimTime::from_secs(16), FaultAction::Recover(NodeId(0))),
    ];
    let (report, metrics) = run_fast_raft(&s);
    assert!(report.safety_ok);
    let late = metrics
        .samples
        .iter()
        .filter(|p| p.committed_at > SimTime::from_secs(18))
        .count();
    assert!(late > 5, "cluster did not recover full service: {late}");
}

#[test]
fn silent_leave_of_minority_keeps_liveness() {
    let mut s = base(77, 0.05);
    s.faults = vec![
        (SimTime::from_secs(8), FaultAction::SilentLeave(NodeId(3))),
        (SimTime::from_secs(8), FaultAction::SilentLeave(NodeId(4))),
    ];
    let (report, metrics) = run_fast_raft(&s);
    assert!(report.safety_ok);
    assert!(report.member_suspected >= 2, "leaver detection failed");
    let late = metrics
        .samples
        .iter()
        .filter(|p| p.committed_at > SimTime::from_secs(15))
        .count();
    assert!(late > 10, "post-reconfiguration liveness failed: {late}");
}
