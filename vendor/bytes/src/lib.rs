//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of external crates the codebase relies on are vendored here as
//! minimal, behaviour-compatible shims covering exactly the API surface the
//! workspace uses. This one provides [`Bytes`] (cheaply cloneable, immutable)
//! and [`BytesMut`] (growable, freezable) byte buffers.
//!
//! Compatibility notes versus the real crate:
//! - `Bytes::clone` is O(1) (shared via `Arc`), like the real crate.
//! - Zero-copy `from_static` is not implemented; static slices are copied
//!   once at construction. Nothing in this workspace is sensitive to that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a `Bytes` from a static slice (copied once; see module docs).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates a `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that can be frozen into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty `BytesMut`.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty `BytesMut` with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends the given slice to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello");
        assert_eq!(m.len(), 5);
        let b = m.freeze();
        let c = b.clone();
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, c);
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"ab").to_vec(), vec![b'a', b'b']);
        assert_eq!(Bytes::copy_from_slice(&[1, 2]).len(), 2);
        assert_eq!(Bytes::from(vec![3u8]).len(), 1);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
