//! Offline shim for the `serde_derive` proc-macro crate.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — it never
//! actually serializes anything (reports are written as hand-rolled CSV/JSON).
//! The shim `serde` crate provides blanket implementations of both traits, so
//! these derive macros can expand to nothing at all: the derive attribute
//! merely needs to resolve.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the shim `serde::Serialize` trait is
/// blanket-implemented for all types.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the shim `serde::Deserialize` trait is
/// blanket-implemented for all types.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
