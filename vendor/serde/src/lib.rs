//! Offline shim for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The container this workspace builds in has no access to crates.io. The
//! workspace only uses serde to *derive* `Serialize`/`Deserialize` on report
//! and identifier types (forward-looking, for an eventual JSON exporter); no
//! code path actually serializes through serde today. This shim therefore
//! provides the two trait names as blanket-implemented markers and re-exports
//! no-op derive macros, which is sufficient for every `#[derive(Serialize,
//! Deserialize)]` in the tree to compile and for bounds like `T: Serialize`
//! to be satisfiable.
//!
//! When the workspace gains a real serialization consumer, replace this shim
//! with the real crates (see `vendor/README.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented stand-in for owned deserialization.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
