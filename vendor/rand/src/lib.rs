//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate (0.8
//! API surface).
//!
//! The container this workspace builds in has no access to crates.io, so this
//! shim supplies the subset of rand 0.8 the workspace actually uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, [`rngs::StdRng`], and
//! uniform range sampling ([`distributions::uniform`]).
//!
//! Compatibility notes versus the real crate:
//! - `StdRng` here is **xoshiro256++** seeded through SplitMix64, not ChaCha12.
//!   Streams are deterministic per seed (everything the workspace's
//!   reproducibility story needs) but produce different values than real
//!   `StdRng`. No test in the workspace asserts specific draw values.
//! - Integer range sampling uses 128-bit widening multiply (Lemire-style
//!   without rejection), so an astronomically small modulo bias remains;
//!   irrelevant for simulation workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Error type for fallible RNG operations. The shim's generators are
/// infallible, so this is never constructed by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer and byte output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
    /// Fallible version of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution (for [`Rng::gen`]).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample from empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic per seed; see the crate docs for how this differs from
    /// the real `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the 64-bit seed into 256 bits of state with SplitMix64,
            // the seeding procedure recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution machinery (only the uniform part is provided).
pub mod distributions {
    /// Uniform sampling over ranges, mirroring `rand::distributions::uniform`.
    pub mod uniform {
        use crate::{RngCore, StandardSample};
        use std::ops::{Range, RangeInclusive};

        /// Types that can be sampled uniformly from a range.
        pub trait SampleUniform: PartialOrd + Sized {
            /// Samples uniformly from the half-open range `[lo, hi)`.
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
            /// Samples uniformly from the closed range `[lo, hi]`.
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        }

        /// Range shapes accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Consumes the range and draws one sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
            /// `true` if the range contains no values.
            fn is_empty(&self) -> bool;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(rng, self.start, self.end)
            }
            fn is_empty(&self) -> bool {
                Range::is_empty(self)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                T::sample_closed(rng, lo, hi)
            }
            fn is_empty(&self) -> bool {
                RangeInclusive::is_empty(self)
            }
        }

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        debug_assert!(lo < hi);
                        let span = (hi as i128 - lo as i128) as u128;
                        let draw = u128::from(rng.next_u64());
                        // Widening multiply maps [0, 2^64) onto [0, span).
                        let off = ((draw * span) >> 64) as i128;
                        (lo as i128 + off) as $t
                    }
                    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        debug_assert!(lo <= hi);
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        if span > u128::from(u64::MAX) {
                            // Full-width range: every bit pattern is valid.
                            return rng.next_u64() as $t;
                        }
                        let draw = u128::from(rng.next_u64());
                        let off = ((draw * span) >> 64) as i128;
                        (lo as i128 + off) as $t
                    }
                }
            )*};
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        debug_assert!(lo < hi);
                        let unit = <$t as StandardSample>::standard_sample(rng);
                        lo + (hi - lo) * unit
                    }
                    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        debug_assert!(lo <= hi);
                        // [0, 1) scaled across the closed span; the missing
                        // exact-`hi` endpoint has measure zero.
                        let unit = <$t as StandardSample>::standard_sample(rng);
                        lo + (hi - lo) * unit
                    }
                }
            )*};
        }
        uniform_float!(f32, f64);
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleUniform;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let s: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn full_width_closed_range() {
        let mut rng = StdRng::seed_from_u64(9);
        // Must not overflow or panic.
        let _: u64 = u64::sample_closed(&mut rng, 0, u64::MAX);
    }

    #[test]
    fn gen_and_bool_behave() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((0..1000).filter(|_| rng.gen_bool(0.5)).count() > 300);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
