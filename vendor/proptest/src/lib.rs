//! Offline shim for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The container this workspace builds in has no access to crates.io, so this
//! shim reimplements the slice of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, range / tuple /
//! [`Just`] / [`any`] / collection / simple-regex string strategies, the
//! [`proptest!`], [`prop_oneof!`], and `prop_assert*` macros, and
//! [`ProptestConfig`] (`cases` is honoured).
//!
//! Differences from the real crate, deliberately accepted:
//! - **No shrinking.** A failing case panics with its inputs `Debug`-printed
//!   via the assertion message, but is not minimized (`max_shrink_iters` is
//!   accepted and ignored).
//! - **Fixed seeding.** Each test derives its RNG seed from its fully
//!   qualified name, so runs are reproducible; there is no persistence file
//!   and no `PROPTEST_*` environment handling.
//! - String strategies support only a small regex subset: literals, one
//!   character class `[a-z0-9_]`-style (ranges and singletons), and the
//!   quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::distributions::uniform::SampleUniform;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary label (the runner uses
    /// the fully qualified test name), so every test gets a stable,
    /// independent stream.
    pub fn deterministic(label: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; forked execution is not
    /// implemented.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            fork: false,
        }
    }
}

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies can be unified
    /// (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates", self.whence);
    }
}

/// Uniform choice between type-erased strategies (used by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
}

/// Types with a canonical "anything" strategy, produced by [`any`].
pub trait Arbitrary: Sized {
    /// Draws a fully random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for &'static str {
    type Value = String;
    /// String literals act as (a small subset of) regex generators, like in
    /// the real proptest; see the crate docs for the supported syntax.
    fn gen_value(&self, rng: &mut TestRng) -> String {
        regex_lite::generate(self, rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::distributions::uniform::SampleRange;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S, R>(element: S, size: R) -> VecStrategy<S, R>
    where
        S: Strategy,
        R: SampleRange<usize> + Clone,
    {
        VecStrategy { element, size }
    }

    impl<S, R> Strategy for VecStrategy<S, R>
    where
        S: Strategy,
        R: SampleRange<usize> + Clone,
    {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates ordered sets; duplicates drawn from `element` collapse, so
    /// the final size may fall below the drawn target (same caveat as the
    /// real crate).
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SampleRange<usize> + Clone,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SampleRange<usize> + Clone,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

mod regex_lite {
    //! Generator for the tiny regex subset documented on the crate.

    use super::TestRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = match chars.next() {
                            Some(']') => break,
                            Some(ch) => ch,
                            None => panic!("unterminated class in {pattern:?}"),
                        };
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            if chars.peek() == Some(&']') || chars.peek().is_none() {
                                // Trailing '-' is a literal, e.g. "[a-z_-]".
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                            } else {
                                let hi = chars
                                    .next()
                                    .unwrap_or_else(|| panic!("dangling '-' in {pattern:?}"));
                                ranges.push((lo, hi));
                            }
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => Atom::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                ),
                '{' | '}' | '*' | '+' | '?' => panic!("quantifier without atom in {pattern:?}"),
                other => Atom::Literal(other),
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for ch in chars.by_ref() {
                        if ch == '}' {
                            break;
                        }
                        spec.push(ch);
                    }
                    match spec.split_once(',') {
                        None => {
                            let n: usize = spec.parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                        Some((m, "")) => (m.parse().expect("bad {m,} quantifier"), 16),
                        Some((m, n)) => (
                            m.parse().expect("bad {m,n} quantifier"),
                            n.parse().expect("bad {m,n} quantifier"),
                        ),
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                _ => (1, 1),
            };
            let reps = rng.gen_range(lo..=hi);
            for _ in 0..reps {
                match &atom {
                    Atom::Literal(ch) => out.push(*ch),
                    Atom::Class(ranges) => {
                        let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                        let span = b as u32 - a as u32;
                        let pick = a as u32 + rng.gen_range(0..=span);
                        out.push(char::from_u32(pick).expect("range produced invalid char"));
                    }
                }
            }
        }
        out
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs `body` over `cases` generated inputs.
///
/// Supports the optional `#![proptest_config(expr)]` header. Failures panic
/// with the offending generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __proptest_case in 0..config.cases {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under proptest's spelling (no shrink machinery to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::deterministic("t1");
        let s = ((0u64..5), (10u8..=20)).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = Strategy::gen_value(&s, &mut rng);
            assert!(a < 5);
            assert!((10..=20).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::deterministic("t2");
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            seen.insert(Strategy::gen_value(&s, &mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    #[test]
    fn collections_and_regex() {
        let mut rng = TestRng::deterministic("t3");
        let v = super::collection::vec(0u64..10, 1..4);
        for _ in 0..100 {
            let xs = Strategy::gen_value(&v, &mut rng);
            assert!((1..4).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 10));
        }
        let s = super::collection::btree_set(any::<u64>(), 0..12);
        assert!(Strategy::gen_value(&s, &mut rng).len() < 12);
        for _ in 0..100 {
            let name = Strategy::gen_value(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&name.len()));
            assert!(name.chars().all(|c| c.is_ascii_lowercase()));
        }
        let mut saw_dash = false;
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z_-]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c == '-'));
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash, "trailing-dash class never produced '-'");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_runs(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }
}
