//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this shim provides a small but *functional* wall-clock harness behind the
//! criterion API surface the workspace's benches use: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both plain and
//! `name = ...; config = ...; targets = ...` forms).
//!
//! Differences from the real crate: no statistical analysis, no HTML
//! reports, no CLI filtering — each benchmark runs `sample_size` timed
//! samples after a brief warm-up and prints the per-iteration mean, min, and
//! max to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-exported for `use criterion::black_box`; inhibits constant folding of
/// benchmark inputs and outputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; only a hint in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (batched freely).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver. Collects per-benchmark timings and prints a
/// one-line summary for each.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// No-op in this shim (the real crate parses criterion CLI flags).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let (mean, min, max) = b.summary();
        println!(
            "{name:<40} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            mean,
            min,
            max,
            self.sample_size
        );
        self
    }
}

/// Times closures for one benchmark; handed to the closure given to
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once and records the sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` on an input built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }

    fn summary(&self) -> (Duration, Duration, Duration) {
        let n = self.samples.len().max(1) as u32;
        let total: Duration = self.samples.iter().sum();
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        (total / n, min, max)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_summarizes() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| 1 + 1);
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
